// Package perfbench is the deterministic macro-benchmark suite behind the
// repo's performance trajectory. It drives the seeded simulation harness
// through a small set of canonical scenarios — steady-state lookups, heavy
// churn, 5x overload, Byzantine routing at f=0.1, and a zipf hotspot
// workload — and reports both machine-dependent cost metrics (wall ns/op,
// allocs/op, bytes/op, simulator events/sec) and machine-independent
// protocol metrics (lookup latency quantiles, maintenance traffic,
// success rate, hops).
//
// Every scenario is fully seeded: the protocol metrics of a run are
// bit-reproducible, so regressions in them are code changes, never noise.
// The cost metrics vary with the machine and are only comparable between
// two runs on the same host (which is exactly how the CI regression gate
// uses them: PR head vs merge-base on one runner).
//
// mspastry-bench -json emits one BENCH_<scenario>.json per scenario; the
// committed copies at the repository root form the perf trajectory across
// PRs.
package perfbench

import (
	"fmt"
	"runtime"
	"time"

	"mspastry/internal/harness"
	"mspastry/internal/netmodel"
	"mspastry/internal/telemetry"
	"mspastry/internal/trace"
)

// SchemaVersion identifies the BENCH_*.json layout. Bump it when fields
// change incompatibly; readers reject unknown versions.
const SchemaVersion = 1

// Scenario is one canonical macro-benchmark workload.
type Scenario struct {
	// Name is the scenario identifier; the JSON report is written to
	// BENCH_<Name>.json.
	Name string
	// Nodes is the average overlay population.
	Nodes int
	// Duration is the simulated measurement window.
	Duration time.Duration
	// Session is the mean Poisson session time (shorter = heavier churn).
	Session time.Duration
	// LookupRate is application lookups per second per node.
	LookupRate float64
	// Seed drives all randomness in the run.
	Seed int64

	// configure applies scenario-specific knobs (overload service model,
	// adversary, zipf workload) on top of the base config.
	configure func(*harness.Config)
}

// scale shrinks a scenario for fast runs: population and duration divide
// by div (floors keep the overlay routable).
func (s Scenario) scale(div int) Scenario {
	if div <= 1 {
		return s
	}
	out := s
	out.Nodes = maxInt(16, s.Nodes/div)
	out.Duration = maxDur(2*time.Minute, s.Duration/time.Duration(div))
	return out
}

// Scenarios returns the five canonical scenarios at full benchmark scale.
// div > 1 shrinks population and duration for CI-speed runs; the scenario
// set and seeds are identical at every scale, so trajectories at one
// scale stay comparable.
func Scenarios(div int) []Scenario {
	base := []Scenario{
		{
			// Steady state: long sessions, the paper's base lookup mix.
			// This is the pure hot-path scenario — routing, acks and
			// maintenance with almost no repair traffic.
			Name: "steady", Nodes: 100, Duration: 30 * time.Minute,
			Session: 4 * time.Hour, LookupRate: 0.1, Seed: 1,
		},
		{
			// Churn: 15-minute sessions (the paper's harshest Figure 5
			// regime), exercising joins, repair and failure detection.
			Name: "churn", Nodes: 100, Duration: 30 * time.Minute,
			Session: 15 * time.Minute, LookupRate: 0.1, Seed: 1,
		},
		{
			// Overload 5x: bounded service capacity with lookup load at
			// five times the 1/s baseline — the PR 5 degradation regime.
			Name: "overload5x", Nodes: 40, Duration: 10 * time.Minute,
			Session: 4 * time.Hour, LookupRate: 5, Seed: 1,
			configure: func(c *harness.Config) {
				c.Service = netmodel.ServiceModel{QueueLimit: 32, Rate: 50}
				// The PR 5 overload regime: the RTO floor must exceed the
				// worst-case round-trip queueing delay 2*QueueLimit/Rate
				// (= 1.28s) or duplicate storms collapse the sweep, and
				// the aggregate retry rate (Nodes * budget) must stay
				// below a peer's service rate.
				c.Pastry.L = 16
				c.Pastry.MinRTO = 1500 * time.Millisecond
				c.Pastry.RetryBudgetRate = 0.2
				c.Pastry.RetryBudgetBurst = 2
			},
		},
		{
			// Secure f=0.1: ten percent Byzantine peers with the full
			// defense stack on — the PR 6 restoration regime.
			Name: "secure", Nodes: 60, Duration: 20 * time.Minute,
			Session: 4 * time.Hour, LookupRate: 0.05, Seed: 1,
			configure: func(c *harness.Config) {
				c.MaliciousFraction = 0.1
				c.Pastry.SecureRouting = true
			},
		},
		{
			// Hotspot: zipf(1.0) keys concentrate lookups on few roots —
			// the PR 7 popularity regime, at the routing layer.
			Name: "hotspot", Nodes: 80, Duration: 10 * time.Minute,
			Session: 4 * time.Hour, LookupRate: 1, Seed: 1,
			configure: func(c *harness.Config) {
				c.Workload = harness.WorkloadZipf
				c.ZipfS = 1.0
				c.ZipfKeys = 256
			},
		},
	}
	out := make([]Scenario, len(base))
	for i, s := range base {
		out[i] = s.scale(div)
	}
	return out
}

// Tier1 names the scenarios the CI regression gate enforces. They are the
// cheapest, lowest-variance scenarios; the others are tracked but
// advisory.
func Tier1() []string { return []string{"steady", "churn"} }

// ByName returns the scenario with the given name at the given scale.
func ByName(name string, div int) (Scenario, error) {
	for _, s := range Scenarios(div) {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("perfbench: unknown scenario %q", name)
}

// Config builds the deterministic harness configuration for the scenario.
// Two calls return configurations that produce bit-identical runs.
func (s Scenario) Config() harness.Config {
	// CorpNet is the smallest paper topology and is never scaled, so
	// topology construction stays cheap and identical at every scenario
	// scale.
	topo, err := harness.BuildTopology("corpnet", 1, s.Seed)
	if err != nil {
		panic(err)
	}
	tr := trace.Generate(trace.Poisson(s.Session, s.Nodes, s.Duration))
	cfg := harness.DefaultConfig(topo, tr)
	cfg.Seed = s.Seed
	cfg.LookupRate = s.LookupRate
	cfg.SetupRamp = 2 * time.Minute
	cfg.Window = 5 * time.Minute
	if s.configure != nil {
		s.configure(&cfg)
	}
	return cfg
}

// Report is one scenario's measurement, serialised to BENCH_<name>.json.
//
// The fields split into two groups. Protocol metrics (sim events, lookup
// quantiles, maintenance traffic, success, hops) are deterministic for a
// given code version: any change in them is a behaviour change. Cost
// metrics (WallNs, allocs, bytes, events/sec) measure this machine on
// this run and carry meaning only relative to another run on the same
// host.
type Report struct {
	Schema   int    `json:"schema"`
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	Nodes    int    `json:"nodes"`
	// SimDurationSec is the simulated measurement window in seconds.
	SimDurationSec float64 `json:"sim_duration_sec"`

	// Cost metrics (machine-dependent).
	WallNs          int64   `json:"ns_per_op"`
	AllocsPerOp     uint64  `json:"allocs_per_op"`
	BytesPerOp      uint64  `json:"bytes_per_op"`
	SimEvents       uint64  `json:"sim_events"`
	SimEventsPerSec float64 `json:"sim_events_per_sec"`

	// Protocol metrics (deterministic at fixed seed and code version).
	LookupP50Ms               float64 `json:"lookup_p50_ms"`
	LookupP95Ms               float64 `json:"lookup_p95_ms"`
	LookupP99Ms               float64 `json:"lookup_p99_ms"`
	MaintenanceMsgsPerNodeSec float64 `json:"maintenance_msgs_per_node_sec"`
	ControlBytesPerNodeSec    float64 `json:"control_bytes_per_node_sec"`
	LookupsIssued             int     `json:"lookups_issued"`
	LookupsDelivered          int     `json:"lookups_delivered"`
	LookupSuccessRate         float64 `json:"lookup_success_rate"`
	MeanHops                  float64 `json:"mean_hops"`
}

// Run executes the scenario once and measures it. The protocol metrics in
// the returned report are deterministic; the cost metrics reflect this
// process on this machine.
func Run(sc Scenario) Report {
	cfg := sc.Config()
	reg := telemetry.NewRegistry()
	cfg.Telemetry = reg

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()

	res := harness.Run(cfg)

	wall := time.Since(start)
	runtime.ReadMemStats(&after)

	// The lookup delay histogram the telemetry overlay fills during the
	// run; registering again with the same name returns the same family.
	delay := reg.Histogram("mspastry_lookup_delay_seconds", "", telemetry.DefBuckets)

	t := res.Totals
	rep := Report{
		Schema:         SchemaVersion,
		Scenario:       sc.Name,
		Seed:           sc.Seed,
		Nodes:          sc.Nodes,
		SimDurationSec: sc.Duration.Seconds(),

		WallNs:      wall.Nanoseconds(),
		AllocsPerOp: after.Mallocs - before.Mallocs,
		BytesPerOp:  after.TotalAlloc - before.TotalAlloc,
		SimEvents:   res.SimEvents,

		LookupP50Ms:               1000 * delay.Quantile(0.50),
		LookupP95Ms:               1000 * delay.Quantile(0.95),
		LookupP99Ms:               1000 * delay.Quantile(0.99),
		MaintenanceMsgsPerNodeSec: t.ControlPerNodeSec,
		ControlBytesPerNodeSec:    t.ControlBytesPerNodeSec,
		LookupsIssued:             t.Issued,
		LookupsDelivered:          t.Delivered,
		MeanHops:                  t.MeanHops,
	}
	if wall > 0 {
		rep.SimEventsPerSec = float64(res.SimEvents) / wall.Seconds()
	}
	if t.Issued > 0 {
		rep.LookupSuccessRate = float64(t.Delivered) / float64(t.Issued)
	}
	return rep
}

// DeterministicString renders only the protocol metrics, with round-trip
// float formatting: two runs of the same code produce the same string.
// The determinism test and the regression tooling compare these.
func (r Report) DeterministicString() string {
	return fmt.Sprintf(
		"scenario=%s seed=%d nodes=%d sim_sec=%g events=%d p50=%g p95=%g p99=%g maint=%g ctrl_bytes=%g issued=%d delivered=%d success=%g hops=%g",
		r.Scenario, r.Seed, r.Nodes, r.SimDurationSec, r.SimEvents,
		r.LookupP50Ms, r.LookupP95Ms, r.LookupP99Ms,
		r.MaintenanceMsgsPerNodeSec, r.ControlBytesPerNodeSec,
		r.LookupsIssued, r.LookupsDelivered, r.LookupSuccessRate, r.MeanHops)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
