package perfbench

import (
	"testing"
)

// benchScale shrinks the canonical scenarios for benchmark iterations.
// The CI regression gate compares these benchmarks between the PR head
// and its merge-base with benchstat, so keep each iteration around a
// second: long enough to dominate setup, short enough for -count=5.
const benchScale = 4

// BenchmarkScenario runs each canonical macro scenario end to end. ns/op
// and allocs/op here are the numbers the CI benchmark-regression gate
// enforces for the tier-1 scenarios (see Tier1).
func BenchmarkScenario(b *testing.B) {
	for _, sc := range Scenarios(benchScale) {
		sc := sc
		b.Run(sc.Name, func(b *testing.B) {
			b.ReportAllocs()
			var events uint64
			for i := 0; i < b.N; i++ {
				rep := Run(sc)
				events += rep.SimEvents
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
		})
	}
}
