package perfbench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// testScale shrinks scenarios so the whole file runs in CI-test time.
const testScale = 8

func TestScenariosCanonicalSet(t *testing.T) {
	want := []string{"steady", "churn", "overload5x", "secure", "hotspot"}
	scs := Scenarios(1)
	if len(scs) != len(want) {
		t.Fatalf("got %d scenarios, want %d", len(scs), len(want))
	}
	for i, name := range want {
		if scs[i].Name != name {
			t.Errorf("scenario[%d] = %q, want %q", i, scs[i].Name, name)
		}
		if scs[i].Seed == 0 {
			t.Errorf("scenario %q has no seed", name)
		}
	}
	for _, tier1 := range Tier1() {
		if _, err := ByName(tier1, 1); err != nil {
			t.Errorf("tier-1 scenario %q not in canonical set: %v", tier1, err)
		}
	}
	if _, err := ByName("nope", 1); err == nil {
		t.Error("ByName accepted an unknown scenario")
	}
}

func TestScaleKeepsFloors(t *testing.T) {
	for _, sc := range Scenarios(1000) {
		if sc.Nodes < 16 {
			t.Errorf("%s scaled below the population floor: %d", sc.Name, sc.Nodes)
		}
		if sc.Duration < 2*time.Minute {
			t.Errorf("%s scaled below the duration floor: %v", sc.Name, sc.Duration)
		}
	}
}

// TestRunDeterministic proves the protocol metrics of a scenario run are
// bit-reproducible: the regression tooling may treat any difference as a
// code change.
func TestRunDeterministic(t *testing.T) {
	sc, err := ByName("churn", testScale)
	if err != nil {
		t.Fatal(err)
	}
	a := Run(sc)
	b := Run(sc)
	if a.DeterministicString() != b.DeterministicString() {
		t.Errorf("same scenario, different protocol metrics:\n a: %s\n b: %s",
			a.DeterministicString(), b.DeterministicString())
	}
	if a.SimEvents == 0 {
		t.Error("run executed no simulator events")
	}
	if a.LookupsIssued == 0 {
		t.Error("run issued no lookups")
	}
	if a.LookupP50Ms <= 0 || a.LookupP99Ms < a.LookupP50Ms {
		t.Errorf("implausible latency quantiles: p50=%g p99=%g", a.LookupP50Ms, a.LookupP99Ms)
	}
	if a.MaintenanceMsgsPerNodeSec <= 0 {
		t.Error("no maintenance traffic measured")
	}
}

// TestReportJSONRoundTrip writes a real report to disk and decodes it
// back: the emitted BENCH_*.json must survive a strict (unknown fields
// rejected) round trip unchanged.
func TestReportJSONRoundTrip(t *testing.T) {
	sc, err := ByName("steady", testScale)
	if err != nil {
		t.Fatal(err)
	}
	rep := Run(sc)
	dir := t.TempDir()
	path, err := rep.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_steady.json" {
		t.Errorf("wrote %q, want BENCH_steady.json", filepath.Base(path))
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != rep {
		t.Errorf("round trip changed the report:\n wrote %+v\n read  %+v", rep, got)
	}
}

func TestReadFileRejectsBadReports(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := map[string]string{
		"unknown field": `{"schema":1,"scenario":"x","bogus":3}`,
		"wrong schema":  `{"schema":999,"scenario":"x"}`,
		"no scenario":   `{"schema":1}`,
		"not json":      `hello`,
	}
	i := 0
	for name, content := range cases {
		p := write(FileName("bad"+string(rune('a'+i))), content)
		i++
		if _, err := ReadFile(p); err == nil {
			t.Errorf("%s: ReadFile accepted invalid report", name)
		}
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("ReadFile accepted a missing file")
	}
}

// TestReportJSONFieldNames pins the schema's wire names: renaming a field
// breaks the trajectory and must be deliberate (bump SchemaVersion).
func TestReportJSONFieldNames(t *testing.T) {
	buf, err := json.Marshal(Report{Schema: SchemaVersion, Scenario: "x"})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		`"schema"`, `"scenario"`, `"seed"`, `"nodes"`, `"sim_duration_sec"`,
		`"ns_per_op"`, `"allocs_per_op"`, `"bytes_per_op"`,
		`"sim_events"`, `"sim_events_per_sec"`,
		`"lookup_p50_ms"`, `"lookup_p95_ms"`, `"lookup_p99_ms"`,
		`"maintenance_msgs_per_node_sec"`, `"control_bytes_per_node_sec"`,
		`"lookups_issued"`, `"lookups_delivered"`, `"lookup_success_rate"`,
		`"mean_hops"`,
	} {
		if !strings.Contains(string(buf), key) {
			t.Errorf("schema missing field %s in %s", key, buf)
		}
	}
}

func TestWriteFileRefusesWrongSchema(t *testing.T) {
	r := Report{Schema: SchemaVersion + 1, Scenario: "x"}
	if _, err := r.WriteFile(t.TempDir()); err == nil {
		t.Error("WriteFile accepted a report with a foreign schema version")
	}
}
