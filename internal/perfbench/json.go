package perfbench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// FileName returns the canonical report file name for a scenario.
func FileName(scenario string) string {
	return "BENCH_" + scenario + ".json"
}

// WriteFile serialises the report into dir under its canonical name and
// returns the written path.
func (r Report) WriteFile(dir string) (string, error) {
	if r.Schema != SchemaVersion {
		return "", fmt.Errorf("perfbench: refusing to write schema %d (current %d)", r.Schema, SchemaVersion)
	}
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	buf = append(buf, '\n')
	path := filepath.Join(dir, FileName(r.Scenario))
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// ReadFile loads and validates one BENCH_*.json report. Unknown fields
// and unknown schema versions are errors, so the trajectory tooling fails
// loudly instead of silently comparing incompatible layouts.
func ReadFile(path string) (Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var r Report
	dec := json.NewDecoder(bytes.NewReader(buf))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return Report{}, fmt.Errorf("perfbench: %s: %w", path, err)
	}
	if r.Schema != SchemaVersion {
		return Report{}, fmt.Errorf("perfbench: %s: schema %d, want %d", path, r.Schema, SchemaVersion)
	}
	if r.Scenario == "" {
		return Report{}, fmt.Errorf("perfbench: %s: missing scenario name", path)
	}
	return r, nil
}
