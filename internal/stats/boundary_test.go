package stats

import (
	"math"
	"testing"
	"time"
)

// Lookup outcomes are attributed to the window the lookup was issued in,
// not the window the outcome became known in. A lookup issued late in
// window N whose delivery (or loss timeout) lands in window N+1 must count
// against window N.
func TestOutcomeAttributedToIssueWindow(t *testing.T) {
	c := NewCollector(30*time.Minute, 10*time.Minute)
	c.ActiveChanged(0, +4)

	// Issued at 9m30s (window 0), delivered at 10m30s (window 1).
	issue := 9*time.Minute + 30*time.Second
	c.LookupIssued(issue)
	c.LookupDelivered(issue, true, time.Minute, 30*time.Second, 3)

	// Issued at 9m45s (window 0), lost; the loss is only detected after
	// the delivery timeout, well inside window 1, but is reported against
	// the issue time.
	lostIssue := 9*time.Minute + 45*time.Second
	c.LookupIssued(lostIssue)
	c.LookupLost(lostIssue)

	// Issued exactly on the boundary: t = 10m belongs to window 1.
	c.LookupIssued(10 * time.Minute)
	c.LookupDelivered(10*time.Minute, true, time.Second, time.Second, 1)

	ws := c.Finalize()
	w0, w1 := ws[0], ws[1]
	if w0.Issued != 2 {
		t.Fatalf("window 0 issued = %d, want 2", w0.Issued)
	}
	if got := w0.LossRate; math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("window 0 loss rate = %v, want 0.5", got)
	}
	if w0.MeanHops != 3 {
		t.Fatalf("window 0 mean hops = %v, want 3 (delivery must land in issue window)", w0.MeanHops)
	}
	if w1.Issued != 1 || w1.LossRate != 0 {
		t.Fatalf("window 1 issued=%d loss=%v; boundary lookup belongs to window 1",
			w1.Issued, w1.LossRate)
	}
	if ws[2].Issued != 0 {
		t.Fatalf("window 2 issued = %d, want 0", ws[2].Issued)
	}
}

// When the run length is not a multiple of the window, the final partial
// window still accumulates outcomes for lookups issued in it — including
// outcomes that resolve only after the run's nominal end, which winIndex
// clamps back to the final window.
func TestFinalPartialWindow(t *testing.T) {
	// 25-minute run, 10-minute windows: windows at 0, 10m and a 5-minute
	// partial at 20m.
	c := NewCollector(25*time.Minute, 10*time.Minute)
	c.ActiveChanged(0, +8)

	issue := 24 * time.Minute
	c.LookupIssued(issue)
	c.LookupDelivered(issue, true, 2*time.Second, time.Second, 2)

	lost := 24*time.Minute + 30*time.Second
	c.LookupIssued(lost)
	c.LookupLost(lost)

	// A lookup stamped beyond the run end (delivery callbacks can fire
	// during teardown) clamps into the final window rather than vanishing.
	late := 26 * time.Minute
	c.LookupIssued(late)
	c.LookupLost(late)

	ws := c.Finalize()
	if len(ws) != 3 {
		t.Fatalf("windows = %d, want 3", len(ws))
	}
	last := ws[2]
	if last.Issued != 3 {
		t.Fatalf("final window issued = %d, want 3", last.Issued)
	}
	if got := last.LossRate; math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("final window loss rate = %v, want 2/3", got)
	}
	if last.MeanHops != 2 {
		t.Fatalf("final window mean hops = %v, want 2", last.MeanHops)
	}
	// Active normalises by the partial window's real length (5 minutes),
	// so 8 nodes active throughout still average to 8.
	if math.Abs(last.Active-8) > 1e-9 {
		t.Fatalf("final window active = %v, want 8", last.Active)
	}

	tot := c.Totals()
	if tot.Issued != 3 || tot.Lost != 2 || tot.Delivered != 1 {
		t.Fatalf("totals = %+v", tot)
	}
}

// A lookup issued during the setup ramp (negative time) is ignored even if
// its outcome lands inside the measured interval.
func TestSetupIssueCrossingIntoMeasurement(t *testing.T) {
	c := NewCollector(10*time.Minute, 10*time.Minute)
	c.ActiveChanged(0, +2)
	issue := -30 * time.Second
	c.LookupIssued(issue)
	c.LookupDelivered(issue, true, time.Minute, 30*time.Second, 4)
	c.LookupIssued(-time.Millisecond)
	c.LookupLost(-time.Millisecond)

	ws := c.Finalize()
	if ws[0].Issued != 0 || ws[0].MeanHops != 0 || ws[0].LossRate != 0 {
		t.Fatalf("setup-phase lookups leaked into window 0: %+v", ws[0])
	}
	tot := c.Totals()
	if tot.Issued != 0 || tot.Delivered != 0 || tot.Lost != 0 {
		t.Fatalf("setup-phase lookups leaked into totals: %+v", tot)
	}
}
