package stats

import (
	"math"
	"testing"
	"time"

	"mspastry/internal/pastry"
)

func TestWindowAttribution(t *testing.T) {
	c := NewCollector(30*time.Minute, 10*time.Minute)
	c.ActiveChanged(0, +10)
	// Messages in each window.
	c.MsgSent(time.Minute, pastry.CatLeafSet, 40)
	c.MsgSent(11*time.Minute, pastry.CatLeafSet, 40)
	c.MsgSent(12*time.Minute, pastry.CatDistance, 40)
	c.MsgSent(25*time.Minute, pastry.CatAck, 40)
	ws := c.Finalize()
	if len(ws) != 3 {
		t.Fatalf("windows = %d", len(ws))
	}
	if ws[0].ByCategory[pastry.CatLeafSet] == 0 || ws[1].ByCategory[pastry.CatLeafSet] == 0 {
		t.Fatal("leafset messages not attributed")
	}
	if ws[2].ByCategory[pastry.CatAck] == 0 {
		t.Fatal("ack message not attributed to last window")
	}
	// 10 nodes for 600s -> 1 msg / 6000 node-seconds.
	want := 1.0 / 6000
	if got := ws[0].ByCategory[pastry.CatLeafSet]; math.Abs(got-want) > 1e-12 {
		t.Fatalf("rate = %v, want %v", got, want)
	}
}

func TestLookupAccounting(t *testing.T) {
	c := NewCollector(20*time.Minute, 10*time.Minute)
	c.ActiveChanged(0, +5)
	for i := 0; i < 10; i++ {
		c.LookupIssued(time.Minute)
	}
	c.LookupDelivered(time.Minute, true, 150*time.Millisecond, 100*time.Millisecond, 3)
	c.LookupDelivered(time.Minute, true, 250*time.Millisecond, 100*time.Millisecond, 2)
	c.LookupDelivered(time.Minute, false, 50*time.Millisecond, 0, 1)
	c.LookupLost(time.Minute)
	ws := c.Finalize()
	w := ws[0]
	if w.Issued != 10 {
		t.Fatalf("issued = %d", w.Issued)
	}
	// ratio-of-means: (0.15+0.25)/(0.1+0.1) = 2.0.
	if math.Abs(w.RDP-2.0) > 1e-9 {
		t.Fatalf("RDP = %v, want 2.0", w.RDP)
	}
	// mean-of-ratios: (1.5+2.5)/2 = 2.0 as well in this symmetric case.
	if math.Abs(w.RDPMeanOfRatios-2.0) > 1e-9 {
		t.Fatalf("RDPMeanOfRatios = %v, want 2.0", w.RDPMeanOfRatios)
	}
	if math.Abs(w.LossRate-0.1) > 1e-9 {
		t.Fatalf("loss = %v, want 0.1", w.LossRate)
	}
	if math.Abs(w.IncorrectRate-0.1) > 1e-9 {
		t.Fatalf("incorrect = %v, want 0.1", w.IncorrectRate)
	}
	if math.Abs(w.MeanHops-2.0) > 1e-9 {
		t.Fatalf("hops = %v, want 2.0", w.MeanHops)
	}
}

func TestSetupPhaseIgnored(t *testing.T) {
	c := NewCollector(10*time.Minute, 10*time.Minute)
	c.ActiveChanged(-time.Minute, +3) // during setup
	c.MsgSent(-30*time.Second, pastry.CatLeafSet, 40)
	c.LookupIssued(-time.Second)
	c.LookupDelivered(-time.Second, true, time.Millisecond, time.Millisecond, 1)
	c.LookupLost(-time.Second)
	tt := c.Totals()
	if tt.Issued != 0 || tt.Delivered != 0 || tt.Lost != 0 {
		t.Fatalf("setup-phase events leaked into totals: %+v", tt)
	}
	if tt.ControlPerNodeSec != 0 {
		t.Fatal("setup-phase traffic counted")
	}
	// The active count carries over into measurement.
	if math.Abs(tt.MeanActive-3) > 1e-9 {
		t.Fatalf("mean active = %v, want 3", tt.MeanActive)
	}
}

func TestActiveIntegration(t *testing.T) {
	c := NewCollector(20*time.Minute, 10*time.Minute)
	c.ActiveChanged(0, +4)
	c.ActiveChanged(5*time.Minute, +4) // 4 for 5min, 8 for 5min -> avg 6
	c.ActiveChanged(10*time.Minute, -8)
	ws := c.Finalize()
	if math.Abs(ws[0].Active-6) > 1e-9 {
		t.Fatalf("window 0 active = %v, want 6", ws[0].Active)
	}
	if math.Abs(ws[1].Active) > 1e-9 {
		t.Fatalf("window 1 active = %v, want 0", ws[1].Active)
	}
}

func TestControlExcludesLookups(t *testing.T) {
	c := NewCollector(10*time.Minute, 10*time.Minute)
	c.ActiveChanged(0, +1)
	c.MsgSent(time.Minute, pastry.CatLookup, 40)
	c.MsgSent(time.Minute, pastry.CatAck, 40)
	tt := c.Totals()
	want := 1.0 / 600
	if math.Abs(tt.ControlPerNodeSec-want) > 1e-12 {
		t.Fatalf("control = %v, want %v (lookups must not count)", tt.ControlPerNodeSec, want)
	}
}

func TestJoinLatencyCDF(t *testing.T) {
	c := NewCollector(time.Minute, time.Minute)
	for _, d := range []time.Duration{3 * time.Second, time.Second, 2 * time.Second} {
		c.JoinLatency(d)
	}
	cdf := c.JoinLatencyCDF()
	if len(cdf) != 3 {
		t.Fatalf("cdf points = %d", len(cdf))
	}
	if cdf[0].Latency != time.Second || cdf[2].Latency != 3*time.Second {
		t.Fatalf("cdf not sorted: %v", cdf)
	}
	if math.Abs(cdf[2].Fraction-1.0) > 1e-9 {
		t.Fatalf("last fraction = %v", cdf[2].Fraction)
	}
	tt := c.Totals()
	if tt.MedianJoinLatency != 2*time.Second {
		t.Fatalf("median join = %v", tt.MedianJoinLatency)
	}
}

func TestNegativeActivePanics(t *testing.T) {
	c := NewCollector(time.Minute, time.Minute)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative active count")
		}
	}()
	c.ActiveChanged(0, -1)
}

func TestTotalsString(t *testing.T) {
	c := NewCollector(time.Minute, time.Minute)
	c.ActiveChanged(0, +2)
	s := c.Totals().String()
	if s == "" {
		t.Fatal("empty summary")
	}
}
