// Package stats accumulates the evaluation metrics defined in the paper
// (§5.2): incorrect delivery rate and lookup loss rate for dependability;
// relative delay penalty (RDP) and control traffic (messages per second per
// node, broken down by category as in Figure 4) for performance; plus join
// latency for Figure 5.
//
// Metrics are windowed: the paper averages over 10-minute windows for the
// Gnutella/OverNet traces and 1-hour windows for Microsoft.
package stats

import (
	"fmt"
	"sort"
	"time"

	"mspastry/internal/pastry"
)

// numCategories is the number of pastry message categories (1-based enums).
const numCategories = pastry.CategoryCount

// Window accumulates raw counts for one averaging window.
type Window struct {
	Start time.Duration
	// ControlSent counts sent messages by category (lookups included at
	// index CatLookup but excluded from control-traffic rates); SentBytes
	// holds the corresponding single-frame encoded bytes, taken from the
	// wire layer so sim and live byte accounting agree.
	ControlSent [numCategories]int
	SentBytes   [numCategories]int
	// Datagrams counts frames handed to the network; a coalesced batch is
	// one datagram. ControlDatagrams counts frames carrying only control
	// messages (a lookup frame with acks riding along is not one).
	// DatagramBytes sums encoded frame sizes as charged on the wire, and
	// CoalescedSaved is the byte saving versus sending every message as
	// its own frame.
	Datagrams        int
	ControlDatagrams int
	DatagramBytes    int
	CoalescedSaved   int
	// Issued counts lookups issued in this window; Delivered, Incorrect
	// and Lost are attributed to the window the lookup was issued in.
	Issued    int
	Delivered int
	Incorrect int
	Lost      int
	// DelaySum and NetDelaySum accumulate achieved and direct delays (in
	// seconds) for delivered lookups with a non-zero network delay; their
	// ratio is the window's RDP. RatioSum/RDPCount tracks the secondary
	// mean-of-ratios form, which is dominated by near-zero-denominator
	// pairs and reported for comparison only.
	DelaySum    float64
	NetDelaySum float64
	RatioSum    float64
	RDPCount    int
	HopsSum     int
	// Retransmits counts per-hop retransmissions sent in this window
	// (attributed to send time, not issue time): the signature of a
	// retransmission storm under delay spikes or partitions.
	Retransmits int
	// nodeSeconds integrates the active-node count over the window.
	nodeSeconds float64
}

// Collector accumulates windows over a measured run.
type Collector struct {
	window   time.Duration
	duration time.Duration
	wins     []Window

	activeCount  int
	activeCursor time.Duration

	joinLatencies []time.Duration

	// Fault-phase accounting: when a fault window is set, lookup outcomes
	// are additionally attributed (by issue time) to the phase before,
	// during or after the fault.
	faultSet             bool
	faultStart, faultEnd time.Duration
	phases               PhaseTotals
}

// Phase labels the position of a time relative to a fault window.
type Phase int

const (
	// PhaseBefore is the healthy interval preceding the fault.
	PhaseBefore Phase = iota
	// PhaseDuring is the interval while the fault is active.
	PhaseDuring
	// PhaseAfter is the interval after the fault healed.
	PhaseAfter
)

func (p Phase) String() string {
	switch p {
	case PhaseBefore:
		return "before"
	case PhaseDuring:
		return "during"
	case PhaseAfter:
		return "after"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// PhaseCount accumulates lookup outcomes over one fault phase.
type PhaseCount struct {
	Issued    int
	Delivered int
	Incorrect int
	Lost      int
}

// IncorrectRate is incorrect deliveries over issued lookups for the phase.
func (p PhaseCount) IncorrectRate() float64 {
	if p.Issued == 0 {
		return 0
	}
	return float64(p.Incorrect) / float64(p.Issued)
}

// LossRate is lost lookups over issued lookups for the phase.
func (p PhaseCount) LossRate() float64 {
	if p.Issued == 0 {
		return 0
	}
	return float64(p.Lost) / float64(p.Issued)
}

// PhaseTotals carries the three phases of a faulted run.
type PhaseTotals struct {
	Before, During, After PhaseCount
}

// ByPhase returns the count for the given phase.
func (t PhaseTotals) ByPhase(p Phase) PhaseCount {
	switch p {
	case PhaseBefore:
		return t.Before
	case PhaseDuring:
		return t.During
	default:
		return t.After
	}
}

// NewCollector creates a collector for a run of the given duration with
// the given averaging window.
func NewCollector(duration, window time.Duration) *Collector {
	if window <= 0 || duration <= 0 {
		panic("stats: duration and window must be positive")
	}
	nwin := int((duration + window - 1) / window)
	c := &Collector{window: window, duration: duration, wins: make([]Window, nwin)}
	for i := range c.wins {
		c.wins[i].Start = time.Duration(i) * window
	}
	return c
}

// winIndex maps a time to its window, clamping to the run bounds. Times
// before the measured interval (setup phase) return -1.
func (c *Collector) winIndex(t time.Duration) int {
	if t < 0 {
		return -1
	}
	i := int(t / c.window)
	if i >= len(c.wins) {
		i = len(c.wins) - 1
	}
	return i
}

// MsgSent records one sent message at time t with its single-frame
// encoded size in bytes. Retransmissions keep their control category
// (a retx envelope reports CatAck) even when they travel inside a batch.
func (c *Collector) MsgSent(t time.Duration, cat pastry.Category, bytes int) {
	if i := c.winIndex(t); i >= 0 {
		c.wins[i].ControlSent[cat]++
		c.wins[i].SentBytes[cat] += bytes
	}
}

// DatagramSent records one frame handed to the network at time t: its
// on-wire size, what its contents would have cost unbatched, and whether
// it is a pure control-traffic frame.
func (c *Collector) DatagramSent(t time.Duration, control bool, bytes, singleBytes int) {
	if i := c.winIndex(t); i >= 0 {
		w := &c.wins[i]
		w.Datagrams++
		w.DatagramBytes += bytes
		w.CoalescedSaved += singleBytes - bytes
		if control {
			w.ControlDatagrams++
		}
	}
}

// Retransmit records one per-hop retransmission sent at time t.
func (c *Collector) Retransmit(t time.Duration) {
	if i := c.winIndex(t); i >= 0 {
		c.wins[i].Retransmits++
	}
}

// SetFaultWindow declares the interval during which an injected fault is
// active, enabling before/during/after phase accounting of lookup
// outcomes. Call before measurement starts.
func (c *Collector) SetFaultWindow(start, end time.Duration) {
	if end < start {
		panic("stats: fault window ends before it starts")
	}
	c.faultSet = true
	c.faultStart, c.faultEnd = start, end
}

// ExtendFaultWindow pushes the fault window's end out to end (never
// pulling it in). The harness uses it while an overlay is still repairing
// after a fault cleared: the outage is not over — and lookups should not
// count towards the "after" phase — until the overlay has re-converged.
func (c *Collector) ExtendFaultWindow(end time.Duration) {
	if !c.faultSet {
		return
	}
	if end > c.faultEnd {
		c.faultEnd = end
	}
}

// phase maps an issue time to its fault phase; ok is false when no fault
// window was declared or the time precedes measurement.
func (c *Collector) phase(t time.Duration) (*PhaseCount, bool) {
	if !c.faultSet || t < 0 {
		return nil, false
	}
	switch {
	case t < c.faultStart:
		return &c.phases.Before, true
	case t < c.faultEnd:
		return &c.phases.During, true
	default:
		return &c.phases.After, true
	}
}

// Phases returns the per-phase lookup outcomes (zero value when no fault
// window was declared).
func (c *Collector) Phases() PhaseTotals { return c.phases }

// LookupIssued records a lookup entering the overlay at time t.
func (c *Collector) LookupIssued(t time.Duration) {
	if i := c.winIndex(t); i >= 0 {
		c.wins[i].Issued++
	}
	if p, ok := c.phase(t); ok {
		p.Issued++
	}
}

// LookupDelivered records a delivery for a lookup issued at issueT, with
// the achieved delay and the direct network delay between source and root
// (zero when the source routed to itself, which excludes the sample from
// the delay-penalty statistics).
func (c *Collector) LookupDelivered(issueT time.Duration, correct bool, delay, netDelay time.Duration, hops int) {
	i := c.winIndex(issueT)
	if i < 0 {
		return
	}
	w := &c.wins[i]
	w.Delivered++
	if !correct {
		w.Incorrect++
	}
	if p, ok := c.phase(issueT); ok {
		p.Delivered++
		if !correct {
			p.Incorrect++
		}
	}
	if netDelay > 0 {
		w.DelaySum += delay.Seconds()
		w.NetDelaySum += netDelay.Seconds()
		w.RatioSum += float64(delay) / float64(netDelay)
		w.RDPCount++
	}
	w.HopsSum += hops
}

// LookupLost records that a lookup issued at issueT was never delivered.
func (c *Collector) LookupLost(issueT time.Duration) {
	if i := c.winIndex(issueT); i >= 0 {
		c.wins[i].Lost++
	}
	if p, ok := c.phase(issueT); ok {
		p.Lost++
	}
}

// ActiveChanged updates the active-node count at time t (delta of +1 or
// -1), integrating node-seconds into the windows in between.
func (c *Collector) ActiveChanged(t time.Duration, delta int) {
	c.integrateTo(t)
	c.activeCount += delta
	if c.activeCount < 0 {
		panic("stats: negative active count")
	}
}

func (c *Collector) integrateTo(t time.Duration) {
	if t < 0 {
		// Still in the setup phase: track the count, integrate nothing.
		return
	}
	if c.activeCursor < 0 {
		c.activeCursor = 0
	}
	if t > c.duration {
		t = c.duration
	}
	for c.activeCursor < t {
		i := c.winIndex(c.activeCursor)
		winEnd := time.Duration(i+1) * c.window
		seg := t
		if winEnd < seg {
			seg = winEnd
		}
		c.wins[i].nodeSeconds += float64(c.activeCount) * (seg - c.activeCursor).Seconds()
		c.activeCursor = seg
	}
}

// JoinLatency records one completed join.
func (c *Collector) JoinLatency(d time.Duration) {
	c.joinLatencies = append(c.joinLatencies, d)
}

// WindowStat is one finalized window row: the numbers the paper plots.
type WindowStat struct {
	Start time.Duration
	// Active is the average number of active nodes in the window.
	Active float64
	// ControlPerNodeSec is control messages (everything except lookups)
	// sent per second per node.
	ControlPerNodeSec float64
	// ByCategory breaks control traffic down as in Figure 4 (right).
	ByCategory map[pastry.Category]float64
	// ControlBytesPerNodeSec is control traffic measured in encoded wire
	// bytes rather than messages.
	ControlBytesPerNodeSec float64
	// DatagramsPerNodeSec and ControlDatagramsPerNodeSec count frames on
	// the wire; with coalescing enabled they fall below the message rates.
	DatagramsPerNodeSec        float64
	ControlDatagramsPerNodeSec float64
	// RDP is the relative delay penalty for lookups issued in the window:
	// total achieved delay over total direct delay (the ratio-of-means
	// form, which is robust to near-zero direct delays).
	RDP float64
	// RDPMeanOfRatios is the per-lookup mean of delay ratios, reported
	// for comparison; heavy-tailed when sources sit next to roots.
	RDPMeanOfRatios float64
	// MeanHops is the average overlay hop count.
	MeanHops float64
	// LossRate is lost lookups / issued; IncorrectRate is incorrect
	// deliveries / issued.
	LossRate      float64
	IncorrectRate float64
	Issued        int
	// RetxPerNodeSec is per-hop retransmissions sent per second per node:
	// the retransmission-storm indicator under delay spikes and
	// partitions.
	RetxPerNodeSec float64
}

// Finalize integrates the remaining node-seconds and produces per-window
// rows.
func (c *Collector) Finalize() []WindowStat {
	c.integrateTo(c.duration)
	out := make([]WindowStat, len(c.wins))
	for i, w := range c.wins {
		winLen := c.window
		if end := c.duration - w.Start; end < winLen {
			winLen = end
		}
		row := WindowStat{Start: w.Start, Issued: w.Issued, ByCategory: make(map[pastry.Category]float64)}
		if winLen > 0 {
			row.Active = w.nodeSeconds / winLen.Seconds()
		}
		if w.nodeSeconds > 0 {
			var control, controlBytes int
			for cat := 1; cat < numCategories; cat++ {
				if !isControl(pastry.Category(cat)) {
					continue
				}
				control += w.ControlSent[cat]
				controlBytes += w.SentBytes[cat]
				row.ByCategory[pastry.Category(cat)] = float64(w.ControlSent[cat]) / w.nodeSeconds
			}
			row.ControlPerNodeSec = float64(control) / w.nodeSeconds
			row.ControlBytesPerNodeSec = float64(controlBytes) / w.nodeSeconds
			row.DatagramsPerNodeSec = float64(w.Datagrams) / w.nodeSeconds
			row.ControlDatagramsPerNodeSec = float64(w.ControlDatagrams) / w.nodeSeconds
			row.RetxPerNodeSec = float64(w.Retransmits) / w.nodeSeconds
		}
		if w.RDPCount > 0 && w.NetDelaySum > 0 {
			row.RDP = w.DelaySum / w.NetDelaySum
			row.RDPMeanOfRatios = w.RatioSum / float64(w.RDPCount)
		}
		if w.Delivered > 0 {
			row.MeanHops = float64(w.HopsSum) / float64(w.Delivered)
		}
		if w.Issued > 0 {
			row.LossRate = float64(w.Lost) / float64(w.Issued)
			row.IncorrectRate = float64(w.Incorrect) / float64(w.Issued)
		}
		out[i] = row
	}
	return out
}

// Totals summarises a whole run.
type Totals struct {
	Issued, Delivered, Incorrect, Lost int
	RDP                                float64
	RDPMeanOfRatios                    float64
	MeanHops                           float64
	LossRate, IncorrectRate            float64
	ControlPerNodeSec                  float64
	// TotalPerNodeSec includes lookup and application traffic (the
	// quantity the Squirrel validation in Figure 8 plots).
	TotalPerNodeSec float64
	// ControlBytesPerNodeSec measures control traffic in encoded wire
	// bytes; DatagramsPerNodeSec and ControlDatagramsPerNodeSec count
	// frames on the wire (a batch is one datagram); CoalescedSavedBytes is
	// the run-total byte saving from batching.
	ControlBytesPerNodeSec     float64
	DatagramsPerNodeSec        float64
	ControlDatagramsPerNodeSec float64
	CoalescedSavedBytes        int
	ByCategory                 map[pastry.Category]float64
	MeanActive                 float64
	Joins                      int
	MedianJoinLatency          time.Duration
	// Retransmits is the run total of per-hop retransmissions;
	// PeakRetxPerNodeSec is the highest windowed retransmission rate (the
	// storm's amplitude).
	Retransmits        int
	PeakRetxPerNodeSec float64
}

// Totals aggregates over the full run. Call after the run completes;
// Finalize is invoked internally.
func (c *Collector) Totals() Totals {
	c.integrateTo(c.duration)
	t := Totals{ByCategory: make(map[pastry.Category]float64)}
	var delaySum, netDelaySum, ratioSum float64
	var rdpN, hopsSum int
	var nodeSec float64
	var datagrams, controlDatagrams, controlBytes int
	control := make(map[pastry.Category]int)
	for _, w := range c.wins {
		datagrams += w.Datagrams
		controlDatagrams += w.ControlDatagrams
		t.CoalescedSavedBytes += w.CoalescedSaved
		for cat := 1; cat < numCategories; cat++ {
			if isControl(pastry.Category(cat)) {
				controlBytes += w.SentBytes[cat]
			}
		}
		t.Issued += w.Issued
		t.Delivered += w.Delivered
		t.Incorrect += w.Incorrect
		t.Lost += w.Lost
		t.Retransmits += w.Retransmits
		delaySum += w.DelaySum
		netDelaySum += w.NetDelaySum
		ratioSum += w.RatioSum
		rdpN += w.RDPCount
		hopsSum += w.HopsSum
		nodeSec += w.nodeSeconds
		if w.nodeSeconds > 0 {
			if r := float64(w.Retransmits) / w.nodeSeconds; r > t.PeakRetxPerNodeSec {
				t.PeakRetxPerNodeSec = r
			}
		}
		for cat := 1; cat < numCategories; cat++ {
			control[pastry.Category(cat)] += w.ControlSent[cat]
		}
	}
	if rdpN > 0 && netDelaySum > 0 {
		t.RDP = delaySum / netDelaySum
		t.RDPMeanOfRatios = ratioSum / float64(rdpN)
	}
	if t.Delivered > 0 {
		t.MeanHops = float64(hopsSum) / float64(t.Delivered)
	}
	if t.Issued > 0 {
		t.LossRate = float64(t.Lost) / float64(t.Issued)
		t.IncorrectRate = float64(t.Incorrect) / float64(t.Issued)
	}
	if nodeSec > 0 {
		var totalControl, totalAll int
		for cat, cnt := range control {
			totalAll += cnt
			t.ByCategory[cat] = float64(cnt) / nodeSec
			if isControl(cat) {
				totalControl += cnt
			}
		}
		t.ControlPerNodeSec = float64(totalControl) / nodeSec
		t.TotalPerNodeSec = float64(totalAll) / nodeSec
		t.ControlBytesPerNodeSec = float64(controlBytes) / nodeSec
		t.DatagramsPerNodeSec = float64(datagrams) / nodeSec
		t.ControlDatagramsPerNodeSec = float64(controlDatagrams) / nodeSec
	}
	t.MeanActive = nodeSec / c.duration.Seconds()
	t.Joins = len(c.joinLatencies)
	if len(c.joinLatencies) > 0 {
		s := append([]time.Duration(nil), c.joinLatencies...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		t.MedianJoinLatency = s[len(s)/2]
	}
	return t
}

// JoinLatencyCDF returns (latency, cumulative fraction) points for the
// join-latency CDF plotted in Figure 5 (right).
func (c *Collector) JoinLatencyCDF() []CDFPoint {
	if len(c.joinLatencies) == 0 {
		return nil
	}
	s := append([]time.Duration(nil), c.joinLatencies...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := make([]CDFPoint, len(s))
	for i, v := range s {
		out[i] = CDFPoint{Latency: v, Fraction: float64(i+1) / float64(len(s))}
	}
	return out
}

// isControl reports whether a category counts as control traffic (the
// paper: "all traffic except lookup messages"; direct application traffic
// is likewise not control).
func isControl(c pastry.Category) bool {
	return c != pastry.CatLookup && c != pastry.CatApp
}

// CDFPoint is one point of a cumulative distribution.
type CDFPoint struct {
	Latency  time.Duration
	Fraction float64
}

// RecoveryStat measures overlay repair after an injected fault heals: the
// virtual time from the heal instant until every active node's ring
// neighbours again match the ground truth (and every leaf set is
// complete).
type RecoveryStat struct {
	// HealAt is the measured time the fault healed.
	HealAt time.Duration
	// RepairedAt is the measured time global ring consistency was first
	// observed after the heal (polling granularity applies).
	RepairedAt time.Duration
	// Repaired reports whether consistency was restored before the run
	// ended.
	Repaired bool
}

// TimeToRepair is the repair latency; zero when the overlay never
// repaired within the run.
func (r RecoveryStat) TimeToRepair() time.Duration {
	if !r.Repaired {
		return 0
	}
	return r.RepairedAt - r.HealAt
}

// String renders totals compactly for reports.
func (t Totals) String() string {
	return fmt.Sprintf(
		"issued=%d delivered=%d loss=%.2e incorrect=%.2e rdp=%.2f hops=%.2f control=%.3f msgs/s/node active=%.0f",
		t.Issued, t.Delivered, t.LossRate, t.IncorrectRate, t.RDP, t.MeanHops, t.ControlPerNodeSec, t.MeanActive)
}
