// Package stats accumulates the evaluation metrics defined in the paper
// (§5.2): incorrect delivery rate and lookup loss rate for dependability;
// relative delay penalty (RDP) and control traffic (messages per second per
// node, broken down by category as in Figure 4) for performance; plus join
// latency for Figure 5.
//
// Metrics are windowed: the paper averages over 10-minute windows for the
// Gnutella/OverNet traces and 1-hour windows for Microsoft.
package stats

import (
	"fmt"
	"sort"
	"time"

	"mspastry/internal/pastry"
)

// numCategories is the number of pastry message categories (1-based enums).
const numCategories = pastry.CategoryCount

// Window accumulates raw counts for one averaging window.
type Window struct {
	Start time.Duration
	// ControlSent counts sent messages by category (lookups included at
	// index CatLookup but excluded from control-traffic rates).
	ControlSent [numCategories]int
	// Issued counts lookups issued in this window; Delivered, Incorrect
	// and Lost are attributed to the window the lookup was issued in.
	Issued    int
	Delivered int
	Incorrect int
	Lost      int
	// DelaySum and NetDelaySum accumulate achieved and direct delays (in
	// seconds) for delivered lookups with a non-zero network delay; their
	// ratio is the window's RDP. RatioSum/RDPCount tracks the secondary
	// mean-of-ratios form, which is dominated by near-zero-denominator
	// pairs and reported for comparison only.
	DelaySum    float64
	NetDelaySum float64
	RatioSum    float64
	RDPCount    int
	HopsSum     int
	// nodeSeconds integrates the active-node count over the window.
	nodeSeconds float64
}

// Collector accumulates windows over a measured run.
type Collector struct {
	window   time.Duration
	duration time.Duration
	wins     []Window

	activeCount  int
	activeCursor time.Duration

	joinLatencies []time.Duration
}

// NewCollector creates a collector for a run of the given duration with
// the given averaging window.
func NewCollector(duration, window time.Duration) *Collector {
	if window <= 0 || duration <= 0 {
		panic("stats: duration and window must be positive")
	}
	nwin := int((duration + window - 1) / window)
	c := &Collector{window: window, duration: duration, wins: make([]Window, nwin)}
	for i := range c.wins {
		c.wins[i].Start = time.Duration(i) * window
	}
	return c
}

// winIndex maps a time to its window, clamping to the run bounds. Times
// before the measured interval (setup phase) return -1.
func (c *Collector) winIndex(t time.Duration) int {
	if t < 0 {
		return -1
	}
	i := int(t / c.window)
	if i >= len(c.wins) {
		i = len(c.wins) - 1
	}
	return i
}

// MsgSent records one sent message at time t.
func (c *Collector) MsgSent(t time.Duration, cat pastry.Category) {
	if i := c.winIndex(t); i >= 0 {
		c.wins[i].ControlSent[cat]++
	}
}

// LookupIssued records a lookup entering the overlay at time t.
func (c *Collector) LookupIssued(t time.Duration) {
	if i := c.winIndex(t); i >= 0 {
		c.wins[i].Issued++
	}
}

// LookupDelivered records a delivery for a lookup issued at issueT, with
// the achieved delay and the direct network delay between source and root
// (zero when the source routed to itself, which excludes the sample from
// the delay-penalty statistics).
func (c *Collector) LookupDelivered(issueT time.Duration, correct bool, delay, netDelay time.Duration, hops int) {
	i := c.winIndex(issueT)
	if i < 0 {
		return
	}
	w := &c.wins[i]
	w.Delivered++
	if !correct {
		w.Incorrect++
	}
	if netDelay > 0 {
		w.DelaySum += delay.Seconds()
		w.NetDelaySum += netDelay.Seconds()
		w.RatioSum += float64(delay) / float64(netDelay)
		w.RDPCount++
	}
	w.HopsSum += hops
}

// LookupLost records that a lookup issued at issueT was never delivered.
func (c *Collector) LookupLost(issueT time.Duration) {
	if i := c.winIndex(issueT); i >= 0 {
		c.wins[i].Lost++
	}
}

// ActiveChanged updates the active-node count at time t (delta of +1 or
// -1), integrating node-seconds into the windows in between.
func (c *Collector) ActiveChanged(t time.Duration, delta int) {
	c.integrateTo(t)
	c.activeCount += delta
	if c.activeCount < 0 {
		panic("stats: negative active count")
	}
}

func (c *Collector) integrateTo(t time.Duration) {
	if t < 0 {
		// Still in the setup phase: track the count, integrate nothing.
		return
	}
	if c.activeCursor < 0 {
		c.activeCursor = 0
	}
	if t > c.duration {
		t = c.duration
	}
	for c.activeCursor < t {
		i := c.winIndex(c.activeCursor)
		winEnd := time.Duration(i+1) * c.window
		seg := t
		if winEnd < seg {
			seg = winEnd
		}
		c.wins[i].nodeSeconds += float64(c.activeCount) * (seg - c.activeCursor).Seconds()
		c.activeCursor = seg
	}
}

// JoinLatency records one completed join.
func (c *Collector) JoinLatency(d time.Duration) {
	c.joinLatencies = append(c.joinLatencies, d)
}

// WindowStat is one finalized window row: the numbers the paper plots.
type WindowStat struct {
	Start time.Duration
	// Active is the average number of active nodes in the window.
	Active float64
	// ControlPerNodeSec is control messages (everything except lookups)
	// sent per second per node.
	ControlPerNodeSec float64
	// ByCategory breaks control traffic down as in Figure 4 (right).
	ByCategory map[pastry.Category]float64
	// RDP is the relative delay penalty for lookups issued in the window:
	// total achieved delay over total direct delay (the ratio-of-means
	// form, which is robust to near-zero direct delays).
	RDP float64
	// RDPMeanOfRatios is the per-lookup mean of delay ratios, reported
	// for comparison; heavy-tailed when sources sit next to roots.
	RDPMeanOfRatios float64
	// MeanHops is the average overlay hop count.
	MeanHops float64
	// LossRate is lost lookups / issued; IncorrectRate is incorrect
	// deliveries / issued.
	LossRate      float64
	IncorrectRate float64
	Issued        int
}

// Finalize integrates the remaining node-seconds and produces per-window
// rows.
func (c *Collector) Finalize() []WindowStat {
	c.integrateTo(c.duration)
	out := make([]WindowStat, len(c.wins))
	for i, w := range c.wins {
		winLen := c.window
		if end := c.duration - w.Start; end < winLen {
			winLen = end
		}
		row := WindowStat{Start: w.Start, Issued: w.Issued, ByCategory: make(map[pastry.Category]float64)}
		if winLen > 0 {
			row.Active = w.nodeSeconds / winLen.Seconds()
		}
		if w.nodeSeconds > 0 {
			var control int
			for cat := 1; cat < numCategories; cat++ {
				if !isControl(pastry.Category(cat)) {
					continue
				}
				control += w.ControlSent[cat]
				row.ByCategory[pastry.Category(cat)] = float64(w.ControlSent[cat]) / w.nodeSeconds
			}
			row.ControlPerNodeSec = float64(control) / w.nodeSeconds
		}
		if w.RDPCount > 0 && w.NetDelaySum > 0 {
			row.RDP = w.DelaySum / w.NetDelaySum
			row.RDPMeanOfRatios = w.RatioSum / float64(w.RDPCount)
		}
		if w.Delivered > 0 {
			row.MeanHops = float64(w.HopsSum) / float64(w.Delivered)
		}
		if w.Issued > 0 {
			row.LossRate = float64(w.Lost) / float64(w.Issued)
			row.IncorrectRate = float64(w.Incorrect) / float64(w.Issued)
		}
		out[i] = row
	}
	return out
}

// Totals summarises a whole run.
type Totals struct {
	Issued, Delivered, Incorrect, Lost int
	RDP                                float64
	RDPMeanOfRatios                    float64
	MeanHops                           float64
	LossRate, IncorrectRate            float64
	ControlPerNodeSec                  float64
	// TotalPerNodeSec includes lookup and application traffic (the
	// quantity the Squirrel validation in Figure 8 plots).
	TotalPerNodeSec   float64
	ByCategory        map[pastry.Category]float64
	MeanActive        float64
	Joins             int
	MedianJoinLatency time.Duration
}

// Totals aggregates over the full run. Call after the run completes;
// Finalize is invoked internally.
func (c *Collector) Totals() Totals {
	c.integrateTo(c.duration)
	t := Totals{ByCategory: make(map[pastry.Category]float64)}
	var delaySum, netDelaySum, ratioSum float64
	var rdpN, hopsSum int
	var nodeSec float64
	control := make(map[pastry.Category]int)
	for _, w := range c.wins {
		t.Issued += w.Issued
		t.Delivered += w.Delivered
		t.Incorrect += w.Incorrect
		t.Lost += w.Lost
		delaySum += w.DelaySum
		netDelaySum += w.NetDelaySum
		ratioSum += w.RatioSum
		rdpN += w.RDPCount
		hopsSum += w.HopsSum
		nodeSec += w.nodeSeconds
		for cat := 1; cat < numCategories; cat++ {
			control[pastry.Category(cat)] += w.ControlSent[cat]
		}
	}
	if rdpN > 0 && netDelaySum > 0 {
		t.RDP = delaySum / netDelaySum
		t.RDPMeanOfRatios = ratioSum / float64(rdpN)
	}
	if t.Delivered > 0 {
		t.MeanHops = float64(hopsSum) / float64(t.Delivered)
	}
	if t.Issued > 0 {
		t.LossRate = float64(t.Lost) / float64(t.Issued)
		t.IncorrectRate = float64(t.Incorrect) / float64(t.Issued)
	}
	if nodeSec > 0 {
		var totalControl, totalAll int
		for cat, cnt := range control {
			totalAll += cnt
			t.ByCategory[cat] = float64(cnt) / nodeSec
			if isControl(cat) {
				totalControl += cnt
			}
		}
		t.ControlPerNodeSec = float64(totalControl) / nodeSec
		t.TotalPerNodeSec = float64(totalAll) / nodeSec
	}
	t.MeanActive = nodeSec / c.duration.Seconds()
	t.Joins = len(c.joinLatencies)
	if len(c.joinLatencies) > 0 {
		s := append([]time.Duration(nil), c.joinLatencies...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		t.MedianJoinLatency = s[len(s)/2]
	}
	return t
}

// JoinLatencyCDF returns (latency, cumulative fraction) points for the
// join-latency CDF plotted in Figure 5 (right).
func (c *Collector) JoinLatencyCDF() []CDFPoint {
	if len(c.joinLatencies) == 0 {
		return nil
	}
	s := append([]time.Duration(nil), c.joinLatencies...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := make([]CDFPoint, len(s))
	for i, v := range s {
		out[i] = CDFPoint{Latency: v, Fraction: float64(i+1) / float64(len(s))}
	}
	return out
}

// isControl reports whether a category counts as control traffic (the
// paper: "all traffic except lookup messages"; direct application traffic
// is likewise not control).
func isControl(c pastry.Category) bool {
	return c != pastry.CatLookup && c != pastry.CatApp
}

// CDFPoint is one point of a cumulative distribution.
type CDFPoint struct {
	Latency  time.Duration
	Fraction float64
}

// String renders totals compactly for reports.
func (t Totals) String() string {
	return fmt.Sprintf(
		"issued=%d delivered=%d loss=%.2e incorrect=%.2e rdp=%.2f hops=%.2f control=%.3f msgs/s/node active=%.0f",
		t.Issued, t.Delivered, t.LossRate, t.IncorrectRate, t.RDP, t.MeanHops, t.ControlPerNodeSec, t.MeanActive)
}
