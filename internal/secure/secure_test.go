package secure

import (
	"math"
	"testing"

	"mspastry/internal/id"
)

// spread returns n identifiers evenly spaced around the ring, offset so
// none sits at zero.
func spread(n int) []id.ID {
	ids := make([]id.ID, n)
	step := math.MaxUint64 / uint64(n)
	for i := 0; i < n; i++ {
		ids[i] = id.New(uint64(i)*step+step/3, 0)
	}
	return ids
}

// cluster returns n identifiers packed into a tiny arc starting at base,
// one unit of Hi apart (adjacent at ring scale).
func cluster(base uint64, n int) []id.ID {
	ids := make([]id.ID, n)
	for i := 0; i < n; i++ {
		ids[i] = id.New(base+uint64(i), 0)
	}
	return ids
}

func TestMeanGapBoundaries(t *testing.T) {
	even16 := spread(16)
	evenGap, _ := MeanGap(even16)
	cases := []struct {
		name    string
		ids     []id.ID
		wantOK  bool
		wantGap float64 // 0 = don't check the value
	}{
		{name: "empty", ids: nil, wantOK: false},
		{name: "single", ids: spread(1), wantOK: false},
		{name: "all duplicates", ids: []id.ID{id.New(7, 7), id.New(7, 7), id.New(7, 7)}, wantOK: false},
		{name: "two nodes smaller arc", ids: []id.ID{id.New(0, 0), id.New(1, 0)},
			wantOK: true, wantGap: toFloat(id.New(1, 0))},
		{name: "duplicates collapse", ids: append(append([]id.ID{}, even16...), even16...),
			wantOK: true, wantGap: evenGap},
		{name: "adjacent ids", ids: cluster(1000, 8),
			wantOK: true, wantGap: toFloat(id.New(1, 0))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			gap, ok := MeanGap(tc.ids)
			if ok != tc.wantOK {
				t.Fatalf("MeanGap ok = %v, want %v", ok, tc.wantOK)
			}
			if tc.wantGap != 0 && math.Abs(gap-tc.wantGap) > tc.wantGap*1e-9 {
				t.Fatalf("MeanGap = %g, want %g", gap, tc.wantGap)
			}
		})
	}
	// Evenly spaced ids: the mean gap is ring/n (the dropped "largest"
	// gap equals every other gap, so dropping it changes nothing).
	if want := ringSize / 16; math.Abs(evenGap-want) > want*1e-3 {
		t.Fatalf("even spread gap = %g, want ~%g", evenGap, want)
	}
}

// TestMeanGapDropsUncoveredArc checks that the arc of the ring a leaf
// set does not cover is excluded: a tight cluster of 9 nodes must report
// the intra-cluster gap, not the huge wrap-around gap.
func TestMeanGapDropsUncoveredArc(t *testing.T) {
	gap, ok := MeanGap(cluster(1<<40, 9))
	if !ok {
		t.Fatal("MeanGap not ok for 9-node cluster")
	}
	if want := toFloat(id.New(1, 0)); math.Abs(gap-want) > want*1e-9 {
		t.Fatalf("cluster gap = %g, want %g (uncovered arc must be dropped)", gap, want)
	}
}

func TestCheckVerdicts(t *testing.T) {
	cfg := DefaultConfig()
	// A dense honest world: 256 nodes → local gap ring/256.
	world := spread(256)
	localGap, _ := MeanGap(world[:32])
	// Honest report: root = closest world node to the key, leaves = its
	// ring neighbours.
	key := id.New(1<<60, 12345)
	root := closestTo(world, key)
	honest := neighboursOf(world, root, 16)

	// Colluders: 16 of the 256 nodes (f ≈ 0.06), none adjacent.
	var colluders []id.ID
	for i := 0; i < len(world); i += 16 {
		colluders = append(colluders, world[i])
	}
	badRoot := closestTo(colluders, key)

	cases := []struct {
		name     string
		rep      Report
		localGap float64
		want     Verdict
	}{
		{name: "honest dense report", rep: Report{Key: key, Root: root, Leaves: honest},
			localGap: localGap, want: Pass},
		{name: "no local estimate abstains", rep: Report{Key: key, Root: badRoot, Leaves: colluders},
			localGap: 0, want: Pass},
		{name: "colluder-only leafset is sparse", rep: Report{Key: key, Root: badRoot, Leaves: without(colluders, badRoot)},
			localGap: localGap, want: Sparse},
		{name: "empty leafset on populated ring", rep: Report{Key: key, Root: badRoot},
			localGap: localGap, want: Sparse},
		{name: "dense leafset betrays far root", rep: Report{Key: key, Root: world[128], Leaves: neighboursOf(world, world[128], 16)},
			localGap: localGap, want: CloserMember},
		// Leaves strictly on the far side of the bogus root, so the
		// self-incrimination check stays quiet and only the root-distance
		// test can fire.
		{name: "far root with plausible density", rep: Report{Key: key, Root: world[128], Leaves: world[129:145]},
			localGap: localGap, want: FarRoot},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Check(tc.rep, tc.localGap, cfg); got != tc.want {
				t.Fatalf("Check = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestCheckMinLeaves pins the leaf-count component: with MinLeaves set,
// a report naming fewer distinct leaves than the threshold is sparse no
// matter how plausible its gaps look — the forger cannot name more
// certified identifiers than it controls — while a full honest report,
// or any report under a disabled (zero) threshold, is unaffected.
// Duplicated leaves and the root listed among the leaves must not count
// toward the minimum.
func TestCheckMinLeaves(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinLeaves = 8
	world := spread(256)
	key := id.New(1<<60, 12345)
	root := closestTo(world, key)
	honest := neighboursOf(world, root, 16)
	localGap, _ := MeanGap(world[:32])

	if got := Check(Report{Key: key, Root: root, Leaves: honest}, localGap, cfg); got != Pass {
		t.Fatalf("full honest report under MinLeaves: %v, want Pass", got)
	}
	// Adjacent ring neighbours: density looks perfect, count does not.
	short := neighboursOf(world, root, 4)
	if got := Check(Report{Key: key, Root: root, Leaves: short}, localGap, cfg); got != Sparse {
		t.Fatalf("4-leaf report under MinLeaves=8: %v, want Sparse", got)
	}
	// Padding with duplicates or the root itself must not help.
	padded := append(append([]id.ID{}, short...), short[0], short[1], root, root)
	if got := Check(Report{Key: key, Root: root, Leaves: padded}, localGap, cfg); got != Sparse {
		t.Fatalf("padded report under MinLeaves=8: %v, want Sparse", got)
	}
	cfg.MinLeaves = 0
	if got := Check(Report{Key: key, Root: root, Leaves: short}, localGap, cfg); got != Pass {
		t.Fatalf("4-leaf report with count check disabled: %v, want Pass", got)
	}
}

// TestCheckHonestSparseNetwork is the critical false-positive guard: in
// a genuinely tiny/sparse network the local estimate is just as sparse
// as the reports, so every honest report must pass — at every size down
// to two nodes.
func TestCheckHonestSparseNetwork(t *testing.T) {
	cfg := DefaultConfig()
	for _, n := range []int{2, 3, 4, 8} {
		world := spread(n)
		localGap, ok := MeanGap(world)
		if !ok {
			t.Fatalf("n=%d: no local gap", n)
		}
		for _, key := range []id.ID{id.New(5, 5), id.New(1<<63, 0), id.Max} {
			root := closestTo(world, key)
			rep := Report{Key: key, Root: root, Leaves: without(world, root)}
			if got := Check(rep, localGap, cfg); got != Pass {
				t.Fatalf("n=%d key=%v: honest sparse report got %v, want Pass", n, key, got)
			}
		}
	}
}

func TestEstimator(t *testing.T) {
	var e Estimator
	if got := e.Blend(0); got != 0 {
		t.Fatalf("empty estimator Blend(0) = %g, want 0", got)
	}
	if got := e.Blend(42); got != 42 {
		t.Fatalf("no-history Blend(42) = %g, want leaf gap alone", got)
	}
	e.Observe(100)
	if e.Samples() != 1 || e.Blend(0) != 100 {
		t.Fatalf("after one sample: samples=%d blend=%g", e.Samples(), e.Blend(0))
	}
	if got := e.Blend(50); got != 75 {
		t.Fatalf("Blend(50) with history 100 = %g, want 75", got)
	}
	e.Observe(0)  // non-positive gaps are ignored
	e.Observe(-1) // ditto
	if e.Samples() != 1 {
		t.Fatalf("non-positive observations changed sample count: %d", e.Samples())
	}
	for i := 0; i < 200; i++ {
		e.Observe(10)
	}
	if got := e.Blend(0); math.Abs(got-10) > 0.5 {
		t.Fatalf("EWMA did not converge to 10: %g", got)
	}
}

func closestTo(ids []id.ID, key id.ID) id.ID {
	best := ids[0]
	for _, x := range ids[1:] {
		if id.CloserToKey(key, x, best) {
			best = x
		}
	}
	return best
}

// neighboursOf returns the k ids from world closest to centre (excluding
// centre itself) — a stand-in for centre's leaf set.
func neighboursOf(world []id.ID, centre id.ID, k int) []id.ID {
	rest := without(world, centre)
	for i := 0; i < k && i < len(rest); i++ {
		for j := i + 1; j < len(rest); j++ {
			if id.CloserToKey(centre, rest[j], rest[i]) {
				rest[i], rest[j] = rest[j], rest[i]
			}
		}
	}
	if k > len(rest) {
		k = len(rest)
	}
	return rest[:k]
}

func without(ids []id.ID, x id.ID) []id.ID {
	out := make([]id.ID, 0, len(ids))
	for _, y := range ids {
		if y != x {
			out = append(out, y)
		}
	}
	return out
}
