// Package secure implements the statistical machinery of MSPastry's
// Byzantine-routing defenses: an id-space density estimator and the
// routing failure test of Castro et al.'s secure-routing line of work
// (see also "Our Brothers' Keepers: Secure Routing with High Performance"
// and "Spartan: Sparse Robust Addressable Networks").
//
// The core observation: node identifiers are assigned uniformly at
// random (and, in a deployment, certified — an attacker controls only
// the identifiers of the nodes it actually owns). Around any point of
// the ring, the mean gap between consecutive live nodes is therefore
// ring/N. A lookup that really reached the key's root comes back with a
// leaf set about as dense as the origin's own neighbourhood; a lookup
// captured by colluders comes back with a neighbourhood drawn from only
// the f·N malicious nodes, whose mean gap is ~1/f times larger. The
// failure test compares the two densities and flags statistically
// implausible results as suspected misroutes.
//
// The package is pure: every function is deterministic in its inputs,
// so the same code serves the simulator, live nodes and table-driven
// tests. It deliberately depends only on internal/id — the pastry layer
// imports it, not the other way around.
package secure

import (
	"fmt"
	"sort"

	"mspastry/internal/id"
)

// ringSize is 2^128 as a float64; gaps are measured as float64 fractions
// of it. The precision loss (identifiers have 128 bits, float64 has 53)
// is irrelevant for density statistics.
const ringSize = 3.402823669209385e38

// toFloat converts a ring distance to float64.
func toFloat(x id.ID) float64 {
	return float64(x.Hi)*18446744073709551616.0 + float64(x.Lo)
}

// Config holds the failure test's thresholds.
type Config struct {
	// DensityRatio is the suspicion threshold γ: a reported root
	// neighbourhood whose mean inter-node gap exceeds γ× the locally
	// estimated gap fails the test. With f·N colluders the forged
	// neighbourhood is ~1/f times sparser than the truth, so any γ well
	// below 1/f catches it; honest reports concentrate near ratio 1.
	DensityRatio float64
	// DistanceRatio is the root-distance threshold δ: a claimed root
	// farther than δ× the local mean gap from the key fails the test.
	// For an honest root the distance is exponential with mean gap/2, so
	// the false-positive probability is ~e^(-2δ).
	DistanceRatio float64
	// MinLeaves is the smallest plausible reported leaf-set size: Pastry
	// leaf sets have constant capacity L, so on a ring dense enough to
	// fill the origin's own leaf set, every honest root's is full too. A
	// report with fewer distinct leaves fails regardless of its gaps —
	// this is the sharpest density signal of all when the colluder
	// population is smaller than L, because the forger cannot name more
	// distinct certified identifiers than it controls. Callers set it
	// from their own leaf-set occupancy (typically half of it, tolerating
	// transient repair); zero disables the check.
	MinLeaves int
}

// DefaultConfig returns thresholds tuned for a near-zero false-positive
// rate on honest networks: γ=4 (sample means of ~16 exponential gaps
// essentially never differ by 4×), δ=8. MinLeaves is left 0 — it is
// derived from live leaf-set occupancy, not a static default.
func DefaultConfig() Config {
	return Config{DensityRatio: 4, DistanceRatio: 8}
}

// Verdict is the outcome of the routing failure test.
type Verdict int

const (
	// Pass: the report is consistent with the locally observed id-space
	// density (or no local estimate exists, in which case the test
	// abstains rather than guess).
	Pass Verdict = iota
	// CloserMember: the reported leaf set itself contains a node closer
	// to the key than the claimed root — self-incriminating, the
	// responder cannot be the root.
	CloserMember
	// Sparse: the reported neighbourhood is implausibly sparse compared
	// to the local density estimate (the colluders-only signature).
	Sparse
	// FarRoot: the claimed root is implausibly far from the key.
	FarRoot
)

func (v Verdict) String() string {
	switch v {
	case Pass:
		return "pass"
	case CloserMember:
		return "closer-member"
	case Sparse:
		return "sparse"
	case FarRoot:
		return "far-root"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Suspicious reports whether the verdict flags a suspected misroute.
func (v Verdict) Suspicious() bool { return v != Pass }

// MeanGap estimates the local id-space density of a neighbourhood: the
// mean clockwise gap between consecutive distinct members, with the
// single largest gap dropped — that gap is the arc of the ring the
// neighbourhood does not cover, not evidence about its density. For a
// set that wraps the whole ring the dropped gap is an ordinary one,
// which slightly underestimates; at the tiny populations where leaf
// sets wrap, that bias is harmless. It reports ok=false when fewer than
// two distinct identifiers are present (no gap to measure).
func MeanGap(ids []id.ID) (gap float64, ok bool) {
	distinct := make([]id.ID, 0, len(ids))
	seen := make(map[id.ID]bool, len(ids))
	for _, x := range ids {
		if !seen[x] {
			seen[x] = true
			distinct = append(distinct, x)
		}
	}
	if len(distinct) < 2 {
		return 0, false
	}
	sort.Slice(distinct, func(i, j int) bool { return distinct[i].Less(distinct[j]) })
	n := len(distinct)
	gaps := make([]float64, n)
	largest := 0
	for i := range distinct {
		next := distinct[(i+1)%n]
		gaps[i] = toFloat(distinct[i].Clockwise(next))
		if gaps[i] > gaps[largest] {
			largest = i
		}
	}
	// n gaps around the ring; drop the largest (the uncovered arc).
	// Summed explicitly rather than as sum−largest: the uncovered arc can
	// be ~2^75 times the covered gaps, so subtracting it from the total
	// would cancel them out of float64 entirely.
	var sum float64
	for i, g := range gaps {
		if i != largest {
			sum += g
		}
	}
	return sum / float64(n-1), true
}

// Report is one lookup completion to test: the claimed root, its
// reported leaf set and the key that was looked up.
type Report struct {
	Key    id.ID
	Root   id.ID
	Leaves []id.ID
}

// Check runs the routing failure test against the local density
// estimate localGap (the origin's mean inter-node gap; see Estimator).
// A non-positive localGap means the origin has no estimate — a tiny or
// just-bootstrapped network — and the test abstains with Pass: a test
// that cannot tell honest from forged must not fail honest nodes.
func Check(rep Report, localGap float64, cfg Config) Verdict {
	for _, l := range rep.Leaves {
		if l != rep.Root && id.CloserToKey(rep.Key, l, rep.Root) {
			return CloserMember
		}
	}
	if localGap <= 0 {
		return Pass
	}
	if cfg.MinLeaves > 0 {
		distinct := make(map[id.ID]bool, len(rep.Leaves))
		for _, l := range rep.Leaves {
			if l != rep.Root {
				distinct[l] = true
			}
		}
		if len(distinct) < cfg.MinLeaves {
			return Sparse
		}
	}
	ids := make([]id.ID, 0, len(rep.Leaves)+1)
	ids = append(ids, rep.Root)
	ids = append(ids, rep.Leaves...)
	repGap, ok := MeanGap(ids)
	if !ok {
		// The root reported no neighbours at all while we observe a
		// populated ring: a believed-singleton answering for a key on a
		// ring we know has other nodes is implausible.
		return Sparse
	}
	if repGap > cfg.DensityRatio*localGap {
		return Sparse
	}
	if toFloat(rep.Key.Distance(rep.Root)) > cfg.DistanceRatio*localGap {
		return FarRoot
	}
	return Pass
}

// Estimator blends the origin's own leaf-set density with an EWMA over
// the neighbourhood gaps of previously accepted lookups, giving the
// failure test more samples than one leaf set provides. Only reports
// that passed the test may feed Observe, so an attacker cannot directly
// inflate the estimate: a forged gap large enough to matter fails the
// test before it is ever observed.
type Estimator struct {
	ewma    float64
	samples int
}

// ewmaAlpha weights each accepted observation; ~20 observations carry
// most of the estimate.
const ewmaAlpha = 0.1

// Observe feeds the mean gap of one accepted lookup report.
func (e *Estimator) Observe(gap float64) {
	if gap <= 0 {
		return
	}
	if e.samples == 0 {
		e.ewma = gap
	} else {
		e.ewma += ewmaAlpha * (gap - e.ewma)
	}
	e.samples++
}

// Samples reports how many observations have been absorbed.
func (e *Estimator) Samples() int { return e.samples }

// Blend combines the caller's current leaf-set gap with the lookup
// history: the two estimates are averaged once history exists. Either
// source alone may be unavailable (empty leaf set, no accepted lookups
// yet); Blend returns whatever evidence there is, or 0 for none.
func (e *Estimator) Blend(leafGap float64) float64 {
	switch {
	case e.samples == 0:
		return leafGap
	case leafGap <= 0:
		return e.ewma
	default:
		return (leafGap + e.ewma) / 2
	}
}
