package peer

import (
	"math/rand"
	"testing"
	"time"

	"mspastry/internal/id"
)

func testID(b byte) id.ID {
	return id.New(uint64(b)<<56, 0)
}

func member(ids ...id.ID) func(id.ID) bool {
	set := make(map[id.ID]bool, len(ids))
	for _, x := range ids {
		set[x] = true
	}
	return func(x id.ID) bool { return set[x] }
}

func TestStrangerShortExpiry(t *testing.T) {
	r := New(Config{StrangerTTL: time.Minute, AdmittedTTL: time.Hour})
	stranger, mem := testID(1), testID(2)
	r.Obtain(stranger, "s", 0)
	r.Obtain(mem, "m", 0)

	isMember := member(mem)
	if n := r.Sweep(30*time.Second, isMember); n != 0 {
		t.Fatalf("evicted %d before TTL", n)
	}
	if r.Len() != 2 {
		t.Fatalf("len=%d, want 2", r.Len())
	}
	if n := r.Sweep(time.Minute, isMember); n != 1 {
		t.Fatalf("evicted %d at TTL, want 1 (the stranger)", n)
	}
	if r.Lookup(stranger) != nil {
		t.Fatal("stranger record survived")
	}
	if rec := r.Lookup(mem); rec == nil || !rec.Admitted() {
		t.Fatal("member should survive, admitted")
	}
	st := r.Stats()
	if st.EvictedStrangers != 1 || st.EvictedAdmitted != 0 {
		t.Fatalf("stats %+v: want 1 stranger eviction", st)
	}
}

func TestAdmittedLongTTLAndTouchRefresh(t *testing.T) {
	r := New(Config{StrangerTTL: time.Minute, AdmittedTTL: 10 * time.Minute})
	x := testID(3)
	r.Obtain(x, "a", 0)
	r.Sweep(0, member(x)) // admits
	none := member()
	if n := r.Sweep(9*time.Minute, none); n != 0 {
		t.Fatal("admitted record evicted before AdmittedTTL")
	}
	r.Lookup(x).Touch(9 * time.Minute)
	if n := r.Sweep(10*time.Minute, none); n != 0 {
		t.Fatal("touch did not refresh the idle clock")
	}
	if n := r.Sweep(19*time.Minute, none); n != 1 {
		t.Fatal("admitted record not evicted after AdmittedTTL idle")
	}
}

func TestPrunableSlotBlocksEviction(t *testing.T) {
	r := New(Config{StrangerTTL: time.Minute, AdmittedTTL: time.Hour})
	type supp struct{ at time.Duration }
	horizon := 2 * time.Minute
	slot := r.NewSlot("suppress", func(_ id.ID, v any, now time.Duration, _ bool) any {
		if s := v.(*supp); now-s.at > horizon {
			return nil
		}
		return v
	})
	x := testID(4)
	rec := r.Obtain(x, "a", 0)
	r.Put(rec, slot, &supp{at: 0})
	none := member()
	// Past StrangerTTL but within the slot horizon: the slot vetoes.
	if n := r.Sweep(90*time.Second, none); n != 0 {
		t.Fatal("record evicted while prunable slot held state")
	}
	if r.SlotCount(slot) != 1 {
		t.Fatal("slot count should be 1")
	}
	// Past the horizon: slot drains, record follows in the same sweep.
	if n := r.Sweep(3*time.Minute, none); n != 1 {
		t.Fatal("record not evicted after slot drained")
	}
	if r.SlotCount(slot) != 0 {
		t.Fatal("slot count should be 0 after drain")
	}
	if st := r.Stats(); len(st.Slots) != 1 || st.Slots[0].Dropped != 1 {
		t.Fatalf("slot stats %+v: want one drop", st.Slots)
	}
}

func TestRetainedSlotNeverBlocks(t *testing.T) {
	r := New(Config{StrangerTTL: time.Minute, AdmittedTTL: time.Hour})
	slot := r.NewRetainedSlot("rtt")
	x := testID(5)
	rec := r.Obtain(x, "a", 0)
	r.Put(rec, slot, "estimator")
	if n := r.Sweep(time.Minute, member()); n != 1 {
		t.Fatal("retained slot must not delay eviction")
	}
	if r.SlotCount(slot) != 0 {
		t.Fatal("retained slot count not released at eviction")
	}
}

func TestEvictionBroadcastSortedByID(t *testing.T) {
	r := New(Config{StrangerTTL: time.Minute, AdmittedTTL: time.Hour})
	var got []id.ID
	r.OnEvict(func(x id.ID, addr string) { got = append(got, x) })
	// Insert in descending order; broadcast must come back ascending.
	for b := byte(9); b >= 1; b-- {
		r.Obtain(testID(b), "a", 0)
	}
	if n := r.Sweep(time.Minute, member()); n != 9 {
		t.Fatalf("evicted %d, want 9", n)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Cmp(got[i]) >= 0 {
			t.Fatalf("broadcast out of order at %d: %v", i, got)
		}
	}
}

func TestExpelBroadcastsOnceAndDooms(t *testing.T) {
	r := New(Config{StrangerTTL: time.Hour, AdmittedTTL: time.Hour})
	evictions := 0
	r.OnEvict(func(x id.ID, addr string) {
		evictions++
		if addr != "a" {
			t.Fatalf("addr %q, want record's address", addr)
		}
	})
	x := testID(6)
	r.Obtain(x, "a", 0)
	r.Sweep(0, member(x)) // admit
	r.Expel(x, "")
	if evictions != 1 {
		t.Fatal("Expel must broadcast immediately")
	}
	// Doomed: deleted at the next sweep without TTL wait, no re-broadcast.
	if n := r.Sweep(time.Second, member()); n != 1 {
		t.Fatal("doomed record not collected")
	}
	if evictions != 1 {
		t.Fatal("doomed collection must not re-broadcast")
	}
}

func TestReadmissionLiftsDoom(t *testing.T) {
	r := New(Config{StrangerTTL: time.Hour, AdmittedTTL: time.Hour})
	x := testID(7)
	r.Obtain(x, "a", 0)
	r.Expel(x, "")
	// The peer comes back before the next sweep: membership lifts the doom.
	if n := r.Sweep(time.Second, member(x)); n != 0 {
		t.Fatal("readmitted peer evicted")
	}
	if rec := r.Lookup(x); rec == nil || !rec.Admitted() {
		t.Fatal("readmitted peer should be live and admitted")
	}
}

func TestExpelWithoutRecordIsSafe(t *testing.T) {
	r := New(Config{})
	called := false
	r.OnEvict(func(x id.ID, addr string) { called = true })
	r.Expel(testID(8), "addr")
	if !called {
		t.Fatal("Expel must still notify subscribers")
	}
}

// BenchmarkRegistryAdmitEvict is the CI lifecycle smoke: observe,
// admit, slot-fill, expire and evict a rolling peer population.
func BenchmarkRegistryAdmitEvict(b *testing.B) {
	r := New(Config{StrangerTTL: time.Minute, AdmittedTTL: 5 * time.Minute})
	slot := r.NewSlot("bench", func(_ id.ID, v any, now time.Duration, m bool) any {
		if !m {
			return nil
		}
		return v
	})
	rtt := r.NewRetainedSlot("rtt")
	rng := rand.New(rand.NewSource(1))
	ids := make([]id.ID, 256)
	for i := range ids {
		ids[i] = id.Random(rng)
	}
	now := time.Duration(0)
	memberSet := func(x id.ID) bool { return x.Lo&1 == 0 }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := ids[i%len(ids)]
		now += time.Second
		rec := r.Obtain(x, "addr", now)
		rec.LastRecv = now
		if rec.Get(slot) == nil {
			r.Put(rec, slot, &struct{}{})
		}
		if rec.Get(rtt) == nil {
			r.Put(rec, rtt, &struct{}{})
		}
		if i%len(ids) == 0 {
			r.Sweep(now, memberSet)
		}
	}
}
