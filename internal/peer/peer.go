// Package peer is the per-peer state registry: one record per remote
// peer, holding the liveness timestamps every layer needs plus typed
// component slots for subsystem state (self-tuning hints, probe
// suppression memory, overload protection, the reconnect graveyard),
// with an explicit lifecycle
//
//	observed -> admitted -> evicted
//
// driven by routing-state membership. A peer becomes *observed* the
// first time any message is exchanged with it, *admitted* once it
// enters routing state (leaf set, routing table, or an active probe),
// and *evicted* when it has left routing state, every prunable slot
// has drained, and its record has gone untouched for the class TTL —
// short for strangers that were never admitted (so senders that never
// make it into routing state cannot leak state), long for once-admitted
// peers (so reconnect and RTT memory survive transient membership
// gaps). Eviction is broadcast to subscribers (transports, wire
// coalescers, the DHT) so no layer keeps private per-peer state beyond
// the record's life.
//
// Ordering guarantees: slot pruners run in registration order within a
// record; records are visited in map order during a sweep (pruning is
// pure state removal, so this order is unobservable); evicted records
// are broadcast in ascending identifier order so that any work a
// subscriber performs on eviction (for example flushing a coalescing
// queue) happens in a deterministic sequence, keeping seeded
// simulations replayable.
package peer

import (
	"sort"
	"time"

	"mspastry/internal/id"
)

// Config bounds record lifetimes.
type Config struct {
	// StrangerTTL is how long a never-admitted peer's record survives
	// past its last touch. Strangers hold at most probe-suppression
	// memory, so this only needs to cover the longest suppression
	// window that is read for non-members.
	StrangerTTL time.Duration
	// AdmittedTTL is how long a once-admitted peer's record survives
	// after it leaves routing state, preserving RTT estimates and
	// liveness history across transient membership gaps.
	AdmittedTTL time.Duration
}

// DefaultConfig returns the production lifetimes: strangers expire
// after a minute, once-admitted peers after ten.
func DefaultConfig() Config {
	return Config{
		StrangerTTL: time.Minute,
		AdmittedTTL: 10 * time.Minute,
	}
}

// PruneFunc is a slot's pruning rule, applied to every non-nil slot
// value during a sweep. It returns the replacement value; returning nil
// clears the slot. member reports whether the peer is currently in
// routing state.
type PruneFunc func(x id.ID, v any, now time.Duration, member bool) any

// Slot is a handle to one registered component's per-record state.
type Slot struct{ idx int }

type slotDef struct {
	name  string
	prune PruneFunc // nil for retained slots
}

// Record is one peer's state. The exported timestamp fields are the
// liveness bookkeeping every layer shares; component state hangs off
// the registered slots.
type Record struct {
	ID   id.ID
	Addr string

	// LastRecv/LastSent are when a message was last received from /
	// sent to the peer; LastLiveness is the last probe activity;
	// LastHeartbeat is the last heartbeat sent to it.
	LastRecv      time.Duration
	LastSent      time.Duration
	LastLiveness  time.Duration
	LastHeartbeat time.Duration

	touch    time.Duration
	admitted bool
	doomed   bool
	slots    []any
}

// Admitted reports whether the peer ever entered routing state.
func (rec *Record) Admitted() bool { return rec.admitted }

// Doomed reports whether the record awaits final deletion after an
// Expel: its eviction has already been broadcast, and the next sweep
// where its prunable slots have drained removes it without a TTL wait.
func (rec *Record) Doomed() bool { return rec.doomed }

// Admit marks the peer as having entered routing state (and lifts any
// pending expulsion: the peer came back).
func (rec *Record) Admit() {
	rec.admitted = true
	rec.doomed = false
}

// Touch refreshes the record's idle clock.
func (rec *Record) Touch(now time.Duration) {
	if now > rec.touch {
		rec.touch = now
	}
}

// Touched returns when the record's idle clock was last refreshed; TTL
// expiry measures from here.
func (rec *Record) Touched() time.Duration { return rec.touch }

// Registry holds every known peer's record.
type Registry struct {
	cfg   Config
	recs  map[id.ID]*Record
	slots []slotDef
	subs  []func(x id.ID, addr string)

	// live[i] counts records whose slot i is non-nil; drops[i] counts
	// cumulative slot values cleared by pruning.
	live  []int
	drops []uint64

	sweeps           uint64
	evictedStrangers uint64
	evictedAdmitted  uint64
	expelled         uint64
}

// New creates an empty registry; zero Config fields take defaults.
func New(cfg Config) *Registry {
	def := DefaultConfig()
	if cfg.StrangerTTL <= 0 {
		cfg.StrangerTTL = def.StrangerTTL
	}
	if cfg.AdmittedTTL <= 0 {
		cfg.AdmittedTTL = def.AdmittedTTL
	}
	return &Registry{cfg: cfg, recs: make(map[id.ID]*Record)}
}

// NewSlot registers a prunable component slot. A record cannot be
// evicted while a prunable slot still holds a value: the pruner is the
// component's statement of how long its state stays meaningful.
func (r *Registry) NewSlot(name string, prune PruneFunc) Slot {
	if prune == nil {
		panic("peer: NewSlot requires a prune func (use NewRetainedSlot)")
	}
	return r.addSlot(name, prune)
}

// NewRetainedSlot registers a slot with no pruning rule: its value
// lives exactly as long as the record and never delays eviction. Used
// for state that is only read while the peer is a member (for example
// RTT estimators).
func (r *Registry) NewRetainedSlot(name string) Slot {
	return r.addSlot(name, nil)
}

func (r *Registry) addSlot(name string, prune PruneFunc) Slot {
	r.slots = append(r.slots, slotDef{name: name, prune: prune})
	r.live = append(r.live, 0)
	r.drops = append(r.drops, 0)
	return Slot{idx: len(r.slots) - 1}
}

// OnEvict subscribes to eviction broadcasts. Subscribers are invoked in
// subscription order, once per evicted peer, after the record is gone.
func (r *Registry) OnEvict(fn func(x id.ID, addr string)) {
	r.subs = append(r.subs, fn)
}

// Lookup returns the peer's record, or nil if none exists.
func (r *Registry) Lookup(x id.ID) *Record { return r.recs[x] }

// Obtain returns the peer's record, creating it (observed, not yet
// admitted) on first contact, refreshing its address and idle clock.
func (r *Registry) Obtain(x id.ID, addr string, now time.Duration) *Record {
	rec := r.recs[x]
	if rec == nil {
		rec = &Record{ID: x, Addr: addr, touch: now}
		r.recs[x] = rec
		return rec
	}
	if addr != "" {
		rec.Addr = addr
	}
	rec.Touch(now)
	return rec
}

// Get returns the record's value for the slot (nil when unset).
func (rec *Record) Get(s Slot) any {
	if s.idx >= len(rec.slots) {
		return nil
	}
	return rec.slots[s.idx]
}

// Set stores the record's value for the slot. The registry's live-slot
// accounting is maintained by the registry methods; use Registry.Put
// when the count matters, or Set for values that stay non-nil.
func (r *Registry) Put(rec *Record, s Slot, v any) {
	for s.idx >= len(rec.slots) {
		rec.slots = append(rec.slots, nil)
	}
	old := rec.slots[s.idx]
	rec.slots[s.idx] = v
	if old == nil && v != nil {
		r.live[s.idx]++
	} else if old != nil && v == nil {
		r.live[s.idx]--
	}
}

// SlotCount returns how many records currently hold a value in the slot.
func (r *Registry) SlotCount(s Slot) int { return r.live[s.idx] }

// Len returns the number of live records.
func (r *Registry) Len() int { return len(r.recs) }

// Each visits every record in map order. Pure reads and in-place value
// mutation are safe; callers deriving behaviour from the visit order
// must impose their own deterministic ordering.
func (r *Registry) Each(fn func(*Record)) {
	for _, rec := range r.recs {
		fn(rec)
	}
}

// Busy reports whether any prunable slot still holds a value for rec.
// Busy records veto TTL eviction until their slots drain; the leak
// detector uses this to tell vetoed records from genuinely leaked ones.
func (r *Registry) Busy(rec *Record) bool {
	for i, v := range rec.slots {
		if v != nil && r.slots[i].prune != nil {
			return true
		}
	}
	return false
}

// Expel broadcasts the peer's eviction immediately — its external
// per-peer state (transport addresses, coalescing queues, deposit
// records) is released now — and dooms the record: it is deleted at the
// first sweep where every prunable slot has drained, without waiting
// for the idle TTL. Used when a layer knows the peer is gone for good
// (reconnect cache expiry). Safe to call for peers with no record.
func (r *Registry) Expel(x id.ID, addr string) {
	if rec := r.recs[x]; rec != nil {
		rec.doomed = true
		if addr == "" {
			addr = rec.Addr
		}
	}
	r.expelled++
	for _, fn := range r.subs {
		fn(x, addr)
	}
}

// Sweep runs one prune pass: every record's prunable slots are pruned,
// members are marked admitted, and non-member records that have fully
// drained and idled past their class TTL (or were expelled) are evicted
// with a broadcast, in ascending identifier order. member reports
// routing-state membership (leaf set, routing table, or active probe).
// Returns the number of records evicted.
func (r *Registry) Sweep(now time.Duration, member func(x id.ID) bool) int {
	r.sweeps++
	var evict []*Record
	for x, rec := range r.recs {
		m := member(x)
		if m {
			rec.Admit()
			// Membership is evidence of relevance: refresh the idle
			// clock so the class TTL measures from when the peer *left*
			// routing state (or its last contact, whichever is later),
			// not from its last message while still a member.
			rec.Touch(now)
		}
		busy := false
		for i := range rec.slots {
			v := rec.slots[i]
			if v == nil {
				continue
			}
			sd := r.slots[i]
			if sd.prune == nil {
				continue // retained: lives with the record
			}
			if v = sd.prune(x, v, now, m); v == nil {
				rec.slots[i] = nil
				r.live[i]--
				r.drops[i]++
				continue
			}
			rec.slots[i] = v
			busy = true
		}
		if m || busy {
			continue
		}
		ttl := r.cfg.StrangerTTL
		if rec.admitted {
			ttl = r.cfg.AdmittedTTL
		}
		if rec.doomed || now-rec.touch >= ttl {
			evict = append(evict, rec)
		}
	}
	sort.Slice(evict, func(i, j int) bool {
		return evict[i].ID.Cmp(evict[j].ID) < 0
	})
	for _, rec := range evict {
		delete(r.recs, rec.ID)
		for i, v := range rec.slots {
			if v != nil {
				r.live[i]--
			}
		}
		if rec.admitted {
			r.evictedAdmitted++
		} else {
			r.evictedStrangers++
		}
		if rec.doomed {
			continue // external state was already released by Expel
		}
		for _, fn := range r.subs {
			fn(rec.ID, rec.Addr)
		}
	}
	return len(evict)
}

// SlotStat is one component slot's cardinality and prune economics.
type SlotStat struct {
	Name string `json:"name"`
	// Live is how many records currently hold state in this slot.
	Live int `json:"live"`
	// Dropped is the cumulative number of slot values cleared by
	// pruning (not counting whole-record evictions).
	Dropped uint64 `json:"dropped"`
}

// Stats is a registry snapshot for telemetry and the admin endpoint.
type Stats struct {
	// Live is the total record count; Admitted of those ever entered
	// routing state; Strangers never did; Doomed await final deletion
	// after an Expel.
	Live      int `json:"live"`
	Admitted  int `json:"admitted"`
	Strangers int `json:"strangers"`
	Doomed    int `json:"doomed"`
	// Sweeps counts prune passes; EvictedStrangers/EvictedAdmitted
	// count records evicted by class; Expelled counts immediate
	// eviction broadcasts.
	Sweeps           uint64 `json:"sweeps"`
	EvictedStrangers uint64 `json:"evicted_strangers"`
	EvictedAdmitted  uint64 `json:"evicted_admitted"`
	Expelled         uint64 `json:"expelled"`
	// Slots is the per-component breakdown, in registration order.
	Slots []SlotStat `json:"slots"`
}

// Stats returns a snapshot of the registry's cardinality and prune
// economics.
func (r *Registry) Stats() Stats {
	s := Stats{
		Live:             len(r.recs),
		Sweeps:           r.sweeps,
		EvictedStrangers: r.evictedStrangers,
		EvictedAdmitted:  r.evictedAdmitted,
		Expelled:         r.expelled,
	}
	for _, rec := range r.recs {
		if rec.admitted {
			s.Admitted++
		} else {
			s.Strangers++
		}
		if rec.doomed {
			s.Doomed++
		}
	}
	s.Slots = make([]SlotStat, len(r.slots))
	for i, sd := range r.slots {
		s.Slots[i] = SlotStat{Name: sd.name, Live: r.live[i], Dropped: r.drops[i]}
	}
	return s
}
