// Package overload provides the building blocks of the overlay's
// overload-protection layer: priority lanes for inbound work, a bounded
// multi-lane queue that sheds lowest-priority-first, a deterministic
// token bucket for retry budgets, and a per-peer circuit-breaker state
// machine.
//
// The package is dependency-free (standard library only) and fully
// deterministic: every time-dependent decision takes the caller's clock
// as an argument, so the same code runs under the discrete-event
// simulator and a live transport without perturbing seeded runs.
package overload

import (
	"fmt"
	"time"
)

// Lane is a priority class for inbound work. Lower values are higher
// priority: liveness traffic (acks, heartbeats, probes) must survive
// overload or the failure detector collapses and takes routing with it;
// bulk replication is the first thing to shed.
type Lane int

const (
	// LaneLiveness carries failure-detection traffic: per-hop acks,
	// heartbeats, leaf-set and routing-table probes and their replies.
	// Shedding it turns overload into false positives and repair storms.
	LaneLiveness Lane = iota
	// LaneControl carries routing control: joins, repair, row and
	// nearest-neighbour exchanges, distance probes.
	LaneControl
	// LaneLookup carries routed application lookups.
	LaneLookup
	// LaneBulk carries bulk transfer: replication values, anti-entropy
	// payloads and direct application traffic.
	LaneBulk
	// NumLanes sizes dense per-lane arrays.
	NumLanes
)

func (l Lane) String() string {
	switch l {
	case LaneLiveness:
		return "liveness"
	case LaneControl:
		return "control"
	case LaneLookup:
		return "lookup"
	case LaneBulk:
		return "bulk"
	default:
		return fmt.Sprintf("Lane(%d)", int(l))
	}
}

// Queue is a bounded multi-lane FIFO with strict-priority dispatch and
// lowest-priority-first shedding. Not safe for concurrent use; owners
// confine it to their event loop or wrap it in a mutex.
type Queue struct {
	limit int
	lanes [NumLanes][]any
	size  int
	// Shed counts items dropped per lane since construction.
	Shed [NumLanes]uint64
}

// NewQueue creates a queue holding at most limit items across all lanes.
func NewQueue(limit int) *Queue {
	if limit < 1 {
		panic(fmt.Sprintf("overload: queue limit %d must be >= 1", limit))
	}
	return &Queue{limit: limit}
}

// Len reports the number of queued items.
func (q *Queue) Len() int { return q.size }

// Limit reports the queue's capacity.
func (q *Queue) Limit() int { return q.limit }

// LoadFactor reports occupancy in [0,1].
func (q *Queue) LoadFactor() float64 {
	return float64(q.size) / float64(q.limit)
}

// Push enqueues v on lane. When the queue is full it sheds from the
// lowest-priority occupied lane: if some occupied lane has strictly lower
// priority than the incoming item, that lane's oldest item is dropped to
// make room; otherwise the incoming item itself is shed (an arrival never
// displaces equal-or-higher-priority work). It returns the lane that was
// shed from, or -1 if nothing was shed.
func (q *Queue) Push(lane Lane, v any) (shed Lane) {
	if lane < 0 || lane >= NumLanes {
		panic(fmt.Sprintf("overload: bad lane %d", int(lane)))
	}
	if q.size >= q.limit {
		victim := q.lowestOccupied()
		if victim <= lane {
			q.Shed[lane]++
			return lane
		}
		q.lanes[victim] = q.lanes[victim][1:]
		q.size--
		q.Shed[victim]++
		shed = victim
	} else {
		shed = -1
	}
	q.lanes[lane] = append(q.lanes[lane], v)
	q.size++
	return shed
}

// lowestOccupied returns the lowest-priority lane holding at least one
// item. Only meaningful on a non-empty queue.
func (q *Queue) lowestOccupied() Lane {
	for l := NumLanes - 1; l >= 0; l-- {
		if len(q.lanes[l]) > 0 {
			return l
		}
	}
	panic("overload: lowestOccupied on empty queue")
}

// Pop dequeues the oldest item from the highest-priority occupied lane.
func (q *Queue) Pop() (v any, lane Lane, ok bool) {
	for l := Lane(0); l < NumLanes; l++ {
		if len(q.lanes[l]) == 0 {
			continue
		}
		v = q.lanes[l][0]
		q.lanes[l][0] = nil // release the reference for GC
		q.lanes[l] = q.lanes[l][1:]
		q.size--
		return v, l, true
	}
	return nil, 0, false
}

// Drain empties the queue without counting sheds, returning how many
// items were discarded. Owners call it when the consumer dies (a crashed
// node processes nothing).
func (q *Queue) Drain() int {
	n := q.size
	for l := range q.lanes {
		q.lanes[l] = nil
	}
	q.size = 0
	return n
}

// TokenBucket is a deterministic token bucket: Rate tokens per second
// refill up to Burst. All methods take the caller's clock, so simulated
// and live time behave identically.
type TokenBucket struct {
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Duration
}

// NewTokenBucket creates a full bucket.
func NewTokenBucket(rate, burst float64, now time.Duration) *TokenBucket {
	if rate <= 0 || burst < 1 {
		panic(fmt.Sprintf("overload: token bucket rate=%v burst=%v invalid", rate, burst))
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst, last: now}
}

// Take consumes one token if available, reporting whether it succeeded.
func (b *TokenBucket) Take(now time.Duration) bool {
	b.refill(now)
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Tokens reports the current token count (after refill), for tests and
// status reporting.
func (b *TokenBucket) Tokens(now time.Duration) float64 {
	b.refill(now)
	return b.tokens
}

// Full reports whether the bucket is at capacity — an idle bucket that an
// owner may prune without losing state.
func (b *TokenBucket) Full(now time.Duration) bool {
	b.refill(now)
	return b.tokens >= b.burst
}

func (b *TokenBucket) refill(now time.Duration) {
	if now <= b.last {
		return
	}
	b.tokens += b.rate * (now - b.last).Seconds()
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
}

// BreakerState is the circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed passes traffic normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen fast-fails: the peer is routed around until the
	// cooldown expires.
	BreakerOpen
	// BreakerHalfOpen admits regular traffic again as the trial: the
	// first outcome closes the breaker (success) or reopens it with a
	// doubled cooldown (failure).
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(s))
	}
}

// Breaker is one peer's circuit-breaker state machine. Threshold
// consecutive failures open it for Cooldown; each reopen doubles the
// cooldown up to MaxCooldown; any success closes it and resets both the
// failure count and the cooldown. When Ready reports the cooldown has
// expired, the owner moves the breaker half-open and lets regular
// traffic through again; the trial's outcome feeds back through Success
// or Failure. The success signal must come from the protected traffic
// class itself (e.g. a per-hop ack), not from a cheap side channel: an
// overloaded peer often still answers high-priority probes while
// shedding real work, and closing on such a reply makes the breaker
// flap uselessly.
type Breaker struct {
	Threshold   int
	Cooldown    time.Duration
	MaxCooldown time.Duration

	state    BreakerState
	failures int
	openedAt time.Duration
	openFor  time.Duration
}

// State returns the breaker's position.
func (b *Breaker) State() BreakerState { return b.state }

// Failures returns the consecutive-failure count.
func (b *Breaker) Failures() int { return b.failures }

// Denies reports whether regular traffic must route around the peer:
// true only while open. Half-open admits traffic — that traffic is the
// recovery trial.
func (b *Breaker) Denies() bool { return b.state == BreakerOpen }

// Failure records one failed interaction, reporting whether the breaker
// transitioned to open on this call. A failure in half-open reopens
// immediately with a doubled cooldown.
func (b *Breaker) Failure(now time.Duration) (opened bool) {
	switch b.state {
	case BreakerHalfOpen:
		b.reopen(now)
		return true
	case BreakerOpen:
		return false
	}
	b.failures++
	if b.failures >= b.Threshold {
		b.openFor = b.Cooldown
		b.state = BreakerOpen
		b.openedAt = now
		return true
	}
	return false
}

// reopen returns an unhealthy half-open breaker to open, doubling the
// cooldown up to MaxCooldown.
func (b *Breaker) reopen(now time.Duration) {
	b.openFor *= 2
	if b.MaxCooldown > 0 && b.openFor > b.MaxCooldown {
		b.openFor = b.MaxCooldown
	}
	b.state = BreakerOpen
	b.openedAt = now
}

// Success records one successful interaction for a request issued at
// sentAt, reporting whether it closed a tripped breaker. Evidence older
// than the breaker's last opening is stale — under a retransmission
// storm there are always stragglers in flight, and an ack for a request
// sent before the breaker tripped only proves the peer served pre-storm
// work, not that it has recovered — so an open or half-open breaker
// ignores it. Fresh evidence closes the breaker and resets all backoff
// state.
func (b *Breaker) Success(sentAt time.Duration) (closed bool) {
	if b.state != BreakerClosed && sentAt < b.openedAt {
		return false
	}
	closed = b.state != BreakerClosed
	b.state = BreakerClosed
	b.failures = 0
	b.openFor = 0
	return closed
}

// Trip forces the breaker open at now regardless of the consecutive-
// failure count: the owner has out-of-band evidence the peer is bad —
// e.g. a routing result confirmed Byzantine by cross-path voting —
// rather than a run of timeouts. A trip from half-open counts as a
// failed trial (doubled cooldown); a trip while already open restarts
// the cooldown clock. Recovery is the usual path: cooldown, half-open
// trial, fresh Success.
func (b *Breaker) Trip(now time.Duration) {
	switch b.state {
	case BreakerHalfOpen:
		b.reopen(now)
		return
	case BreakerOpen:
		b.openedAt = now
		return
	}
	b.failures = b.Threshold
	b.openFor = b.Cooldown
	b.state = BreakerOpen
	b.openedAt = now
}

// Ready reports whether an open breaker's cooldown has expired, so the
// owner should move it half-open and send a trial probe.
func (b *Breaker) Ready(now time.Duration) bool {
	return b.state == BreakerOpen && now-b.openedAt >= b.openFor
}

// HalfOpen moves the breaker to half-open. The owner calls it when
// Ready, re-admitting regular traffic as the recovery trial.
func (b *Breaker) HalfOpen() { b.state = BreakerHalfOpen }

// Stale reports a half-open breaker that has seen no trial outcome for
// at least its maximum cooldown: no traffic wants the peer, so the
// breaker carries no information and the owner may prune it.
func (b *Breaker) Stale(now time.Duration) bool {
	return b.state == BreakerHalfOpen && b.MaxCooldown > 0 && now-b.openedAt >= b.MaxCooldown
}
