package overload

import (
	"testing"
	"time"
)

func TestQueueStrictPriorityPop(t *testing.T) {
	q := NewQueue(8)
	q.Push(LaneBulk, "b1")
	q.Push(LaneLookup, "l1")
	q.Push(LaneLiveness, "a1")
	q.Push(LaneControl, "c1")
	q.Push(LaneLiveness, "a2")

	want := []string{"a1", "a2", "c1", "l1", "b1"}
	for i, w := range want {
		v, _, ok := q.Pop()
		if !ok || v.(string) != w {
			t.Fatalf("pop %d = %v ok=%v, want %q", i, v, ok, w)
		}
	}
	if _, _, ok := q.Pop(); ok {
		t.Fatal("pop on empty queue succeeded")
	}
}

// TestQueueShedsLowestPriorityFirst pins the shedding order under a full
// queue: an arriving higher-priority item displaces the oldest item of
// the lowest-priority occupied lane; an arriving item with no
// lower-priority victim is shed itself.
func TestQueueShedsLowestPriorityFirst(t *testing.T) {
	q := NewQueue(4)
	q.Push(LaneBulk, "bulk")
	q.Push(LaneLookup, "lk1")
	q.Push(LaneLookup, "lk2")
	q.Push(LaneControl, "ctl")

	// Full queue: a liveness arrival must displace the bulk item first.
	if shed := q.Push(LaneLiveness, "live1"); shed != LaneBulk {
		t.Fatalf("shed lane = %v, want %v", shed, LaneBulk)
	}
	// Next victim is the oldest lookup.
	if shed := q.Push(LaneLiveness, "live2"); shed != LaneLookup {
		t.Fatalf("shed lane = %v, want %v", shed, LaneLookup)
	}
	// An arriving lookup has no lower-priority victim left (queue holds
	// liveness, control, lookup) — the lookup itself is shed, never the
	// liveness or control traffic.
	if shed := q.Push(LaneLookup, "lk3"); shed != LaneLookup {
		t.Fatalf("shed lane = %v, want incoming %v shed", shed, LaneLookup)
	}
	// An arriving bulk item is likewise shed itself.
	if shed := q.Push(LaneBulk, "b2"); shed != LaneBulk {
		t.Fatalf("shed lane = %v, want incoming %v shed", shed, LaneBulk)
	}

	if q.Shed[LaneLiveness] != 0 {
		t.Fatalf("liveness sheds = %d, want 0", q.Shed[LaneLiveness])
	}
	if q.Shed[LaneBulk] != 2 || q.Shed[LaneLookup] != 2 {
		t.Fatalf("sheds bulk=%d lookup=%d, want 2 and 2", q.Shed[LaneBulk], q.Shed[LaneLookup])
	}

	// Surviving order: both liveness trials, control, then the younger
	// lookup (lk1 was displaced).
	want := []string{"live1", "live2", "ctl", "lk2"}
	for i, w := range want {
		v, _, ok := q.Pop()
		if !ok || v.(string) != w {
			t.Fatalf("pop %d = %v ok=%v, want %q", i, v, ok, w)
		}
	}
}

func TestQueueDrain(t *testing.T) {
	q := NewQueue(4)
	q.Push(LaneLookup, 1)
	q.Push(LaneBulk, 2)
	if n := q.Drain(); n != 2 {
		t.Fatalf("Drain = %d, want 2", n)
	}
	if q.Len() != 0 {
		t.Fatalf("Len after drain = %d", q.Len())
	}
	if _, _, ok := q.Pop(); ok {
		t.Fatal("pop after drain succeeded")
	}
}

func TestTokenBucketCapsAndRefills(t *testing.T) {
	now := time.Duration(0)
	b := NewTokenBucket(2, 4, now) // 2 tokens/s, burst 4
	for i := 0; i < 4; i++ {
		if !b.Take(now) {
			t.Fatalf("take %d failed with a full bucket", i)
		}
	}
	if b.Take(now) {
		t.Fatal("take succeeded on an empty bucket")
	}
	// Half a second refills one token.
	now += 500 * time.Millisecond
	if !b.Take(now) {
		t.Fatal("take failed after refill")
	}
	if b.Take(now) {
		t.Fatal("second take succeeded after a single-token refill")
	}
	// A long idle period refills to burst, never beyond.
	now += time.Hour
	if got := b.Tokens(now); got != 4 {
		t.Fatalf("tokens after idle = %v, want burst 4", got)
	}
	if !b.Full(now) {
		t.Fatal("Full = false at capacity")
	}
}

// TestBreakerTransitions pins the full state machine:
// closed → open → half-open → closed, and half-open failure reopening
// with a doubled, capped cooldown.
func TestBreakerTransitions(t *testing.T) {
	b := &Breaker{Threshold: 3, Cooldown: time.Second, MaxCooldown: 3 * time.Second}
	now := time.Duration(0)

	if b.Denies() {
		t.Fatal("new breaker denies traffic")
	}
	if b.Failure(now) || b.Failure(now) {
		t.Fatal("breaker opened before threshold")
	}
	if !b.Failure(now) {
		t.Fatal("breaker did not open at threshold")
	}
	if b.State() != BreakerOpen || !b.Denies() {
		t.Fatalf("state = %v after threshold failures", b.State())
	}

	// Cooldown gating.
	if b.Ready(now + 999*time.Millisecond) {
		t.Fatal("Ready before cooldown")
	}
	now += time.Second
	if !b.Ready(now) {
		t.Fatal("not Ready after cooldown")
	}
	b.HalfOpen()
	if b.State() != BreakerHalfOpen || b.Denies() {
		t.Fatalf("state = %v, want half-open (admitting trial traffic)", b.State())
	}

	// Trial failure: reopen with doubled cooldown.
	if !b.Failure(now) {
		t.Fatal("half-open failure did not report reopen")
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v after trial failure", b.State())
	}
	if b.Ready(now + 2*time.Second - time.Millisecond) {
		t.Fatal("Ready before doubled cooldown")
	}
	now += 2 * time.Second
	if !b.Ready(now) {
		t.Fatal("not Ready after doubled cooldown")
	}

	// Two more trips double again but cap at MaxCooldown.
	b.HalfOpen()
	b.Failure(now)
	if b.openFor != 3*time.Second {
		t.Fatalf("cooldown = %v, want capped 3s", b.openFor)
	}

	// Stale evidence — a success whose request predates the opening —
	// must not close the breaker: during a storm there are always
	// straggling acks for pre-storm sends in flight.
	if b.Success(now - time.Second) {
		t.Fatal("stale success closed an open breaker")
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v after stale success, want open", b.State())
	}

	// Trial success (fresh evidence) closes and resets everything.
	now += 3 * time.Second
	b.HalfOpen()
	if !b.Success(now) {
		t.Fatal("fresh success did not report closing")
	}
	if b.State() != BreakerClosed || b.Failures() != 0 || b.Denies() {
		t.Fatalf("state=%v failures=%d after success", b.State(), b.Failures())
	}
	// The next trip starts again from the base cooldown.
	b.Failure(now)
	b.Failure(now)
	b.Failure(now)
	if b.openFor != time.Second {
		t.Fatalf("cooldown after reset = %v, want 1s", b.openFor)
	}
}

// TestBreakerTrip pins the out-of-band opening path used by the
// secure-routing distrust signal: Trip opens immediately from closed,
// restarts the clock from open, counts as a failed trial from half-open,
// and recovers through the ordinary half-open machinery.
func TestBreakerTrip(t *testing.T) {
	b := &Breaker{Threshold: 3, Cooldown: time.Second, MaxCooldown: 8 * time.Second}
	now := time.Duration(0)

	b.Trip(now)
	if b.State() != BreakerOpen || !b.Denies() {
		t.Fatalf("state = %v after Trip from closed, want open", b.State())
	}
	if b.Failures() != 3 {
		t.Fatalf("failures = %d after Trip, want Threshold", b.Failures())
	}

	// Trip while open restarts the cooldown clock without doubling.
	now += 900 * time.Millisecond
	b.Trip(now)
	if b.Ready(now + 999*time.Millisecond) {
		t.Fatal("Ready before restarted cooldown expired")
	}
	if !b.Ready(now + time.Second) {
		t.Fatal("not Ready after restarted cooldown")
	}

	// Trip from half-open is a failed trial: doubled cooldown.
	now += time.Second
	b.HalfOpen()
	b.Trip(now)
	if b.State() != BreakerOpen || b.openFor != 2*time.Second {
		t.Fatalf("state=%v openFor=%v after half-open Trip, want open/2s", b.State(), b.openFor)
	}

	// Normal recovery: cooldown, half-open, fresh success.
	now += 2 * time.Second
	if !b.Ready(now) {
		t.Fatal("not Ready after doubled cooldown")
	}
	b.HalfOpen()
	if !b.Success(now) {
		t.Fatal("fresh success did not close a tripped breaker")
	}
	if b.State() != BreakerClosed || b.Failures() != 0 {
		t.Fatalf("state=%v failures=%d after recovery", b.State(), b.Failures())
	}
}

// TestBreakerStale pins the pruning signal: a half-open breaker that no
// trial traffic has touched for a full MaxCooldown is stale; open and
// closed breakers never are.
func TestBreakerStale(t *testing.T) {
	b := &Breaker{Threshold: 1, Cooldown: time.Second, MaxCooldown: 4 * time.Second}
	now := time.Duration(0)
	if b.Stale(now + time.Hour) {
		t.Fatal("closed breaker reported stale")
	}
	b.Failure(now)
	if b.Stale(now + time.Hour) {
		t.Fatal("open breaker reported stale")
	}
	now += time.Second
	b.HalfOpen()
	if b.Stale(now + 2*time.Second) {
		t.Fatal("fresh half-open breaker reported stale")
	}
	if !b.Stale(now + 4*time.Second) {
		t.Fatal("untouched half-open breaker not stale after MaxCooldown")
	}
}
