package telemetry

import (
	"fmt"
	"testing"
	"time"

	"mspastry/internal/id"
	"mspastry/internal/pastry"
)

func ref(i int) pastry.NodeRef {
	return pastry.NodeRef{ID: id.FromKey(fmt.Sprint("node", i)), Addr: fmt.Sprintf("10.0.0.%d:1", i)}
}

func newLookup(traceID uint64, origin pastry.NodeRef) *pastry.Lookup {
	return &pastry.Lookup{TraceID: traceID, Key: id.FromKey("k"), Origin: origin}
}

func TestPathStraightLine(t *testing.T) {
	tr := NewTracer(0)
	o, a, b := ref(0), ref(1), ref(2)
	lk := newLookup(1, o)
	tr.Begin(lk, 0)
	tr.Hop(lk, o, a, pastry.HopForward, 10*time.Millisecond)
	tr.Hop(lk, a, b, pastry.HopForward, 20*time.Millisecond)
	tr.Deliver(lk, b, 30*time.Millisecond)

	done := tr.Completed()
	if len(done) != 1 {
		t.Fatalf("completed = %d", len(done))
	}
	path, ok := done[0].Path()
	if !ok || len(path) != 3 {
		t.Fatalf("path = %v ok=%v", path, ok)
	}
	lats := done[0].HopLatencies()
	if len(lats) != 2 || lats[0] != 10*time.Millisecond || lats[1] != 20*time.Millisecond {
		t.Fatalf("hop latencies = %v", lats)
	}
	if s := tr.Stats(); s.Delivered != 1 || s.Reconstructed != 1 || s.Outstanding != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// A timed-out branch that was rerouted around must not appear in the
// reconstructed path: A forwards to B, gets no ack, and reroutes to C,
// which delivers. The path is O -> A -> C.
func TestPathSkipsReroutedBranch(t *testing.T) {
	tr := NewTracer(0)
	o, a, b, c := ref(0), ref(1), ref(2), ref(3)
	lk := newLookup(2, o)
	tr.Begin(lk, 0)
	tr.Hop(lk, o, a, pastry.HopForward, 1*time.Millisecond)
	tr.Hop(lk, a, b, pastry.HopForward, 2*time.Millisecond)
	tr.Hop(lk, a, c, pastry.HopReroute, 5*time.Millisecond)
	tr.Deliver(lk, c, 6*time.Millisecond)

	done := tr.Completed()[0]
	if done.Retx != 1 {
		t.Fatalf("retx = %d, want 1 (the reroute)", done.Retx)
	}
	path, ok := done.Path()
	if !ok {
		t.Fatalf("path incomplete: %v", path)
	}
	want := []pastry.NodeRef{o, a, c}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i].ID != want[i].ID {
			t.Fatalf("path[%d] = %v, want %v", i, path[i].ID, want[i].ID)
		}
	}
	if b.ID == path[1].ID {
		t.Fatal("dead branch in path")
	}
}

// Backoff retransmissions to the same hop collapse into one link.
func TestPathCollapsesBackoffs(t *testing.T) {
	tr := NewTracer(0)
	o, a := ref(0), ref(1)
	lk := newLookup(3, o)
	tr.Begin(lk, 0)
	tr.Hop(lk, o, a, pastry.HopForward, 1*time.Millisecond)
	tr.Hop(lk, o, a, pastry.HopBackoff, 40*time.Millisecond)
	tr.Deliver(lk, a, 41*time.Millisecond)

	done := tr.Completed()[0]
	path, ok := done.Path()
	if !ok || len(path) != 2 {
		t.Fatalf("path = %v ok=%v", path, ok)
	}
	if done.Retx != 1 {
		t.Fatalf("retx = %d", done.Retx)
	}
}

// Records that form a forwarding loop are reported as not reconstructable
// rather than looping forever.
func TestPathDetectsLoop(t *testing.T) {
	tr := NewTracer(0)
	o, a := ref(0), ref(1)
	lk := newLookup(4, o)
	tr.Begin(lk, 0)
	tr.Hop(lk, o, a, pastry.HopForward, 1*time.Millisecond)
	tr.Hop(lk, a, o, pastry.HopForward, 2*time.Millisecond)
	tr.Drop(lk, pastry.DropTTL, 3*time.Millisecond)

	done := tr.Completed()[0]
	if _, ok := done.Path(); ok {
		t.Fatal("looped records must not reconstruct")
	}
	if s := tr.Stats(); s.Dropped != 1 || s.Delivered != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(2)
	o, a := ref(0), ref(1)
	for i := 1; i <= 3; i++ {
		lk := newLookup(uint64(i), o)
		tr.Begin(lk, 0)
		tr.Hop(lk, o, a, pastry.HopForward, time.Millisecond)
		tr.Deliver(lk, a, 2*time.Millisecond)
	}
	if got := len(tr.Completed()); got != 2 {
		t.Fatalf("ring kept %d, want 2", got)
	}
	if s := tr.Stats(); s.Delivered != 3 || s.Reconstructed != 3 {
		t.Fatalf("lifetime stats must survive eviction: %+v", s)
	}
	recent := tr.Recent(1)
	if len(recent) != 1 || recent[0].TraceID != 3 {
		t.Fatalf("recent = %+v", recent)
	}
}

// Untraced lookups (TraceID zero, e.g. from a peer running with tracing
// off) are ignored without opening a trace.
func TestUntracedLookupIgnored(t *testing.T) {
	tr := NewTracer(0)
	o, a := ref(0), ref(1)
	lk := newLookup(0, o)
	tr.Begin(lk, 0)
	tr.Hop(lk, o, a, pastry.HopForward, time.Millisecond)
	tr.Deliver(lk, a, 2*time.Millisecond)
	if s := tr.Stats(); s.Delivered != 0 || s.Outstanding != 0 {
		t.Fatalf("stats = %+v", s)
	}
}
