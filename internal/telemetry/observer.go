package telemetry

import (
	"time"

	"mspastry/internal/pastry"
	"mspastry/internal/peer"
)

// OverlayOptions tunes an Overlay observer.
type OverlayOptions struct {
	// Inner is an optional observer to chain (for example the node
	// command's log observer). Its plain Observer methods are called after
	// the metrics are recorded.
	Inner pastry.Observer
	// SharedClock declares that every node's clock reads the same virtual
	// time (true in the simulator). End-to-end lookup delay is only
	// recorded when set: over real transports each node's clock has its
	// own epoch, so root-minus-origin differences are meaningless.
	SharedClock bool
}

// Overlay records the paper's §5.2 metrics from a node's protocol events
// into a Registry (and, optionally, per-hop traces into a Tracer). One
// Overlay serves any number of nodes: the simulator attaches all its
// instances to a single Overlay so a run's metrics aggregate, while a live
// node has exactly one. The metric names are identical in both worlds.
type Overlay struct {
	reg    *Registry
	tracer *Tracer
	opts   OverlayOptions

	issued      *Counter
	delivered   *Counter
	dropped     *CounterVec
	hops        *Histogram
	delay       *Histogram
	sent        *CounterVec
	retx        *Counter
	ackRTT      *Histogram
	trt         *Gauge
	repairs     *CounterVec
	joins       *Counter
	joinLatency *Histogram
	verdicts    *CounterVec
	fanout      *Histogram
}

// NewOverlay creates an overlay observer recording into reg and, when
// tracer is non-nil, tracing every lookup's hops.
func NewOverlay(reg *Registry, tracer *Tracer, opts OverlayOptions) *Overlay {
	return &Overlay{
		reg:    reg,
		tracer: tracer,
		opts:   opts,

		issued: reg.Counter("mspastry_lookups_issued_total",
			"Application lookups that entered the overlay at this node."),
		delivered: reg.Counter("mspastry_lookups_delivered_total",
			"Lookups delivered by this node as the key's root."),
		dropped: reg.CounterVec("mspastry_lookups_dropped_total",
			"Lookups dropped by the overlay, by protocol reason.", "reason"),
		hops: reg.Histogram("mspastry_lookup_hops",
			"Overlay hops of delivered lookups.", HopBuckets),
		delay: reg.Histogram("mspastry_lookup_delay_seconds",
			"End-to-end delay of delivered lookups (simulator only: requires a shared clock).",
			DefBuckets),
		sent: reg.CounterVec("mspastry_messages_sent_total",
			"Protocol messages sent, by the paper's Figure 4 traffic category.", "category"),
		retx: reg.Counter("mspastry_hop_retransmits_total",
			"Per-hop retransmissions (reroutes and backoffs)."),
		ackRTT: reg.Histogram("mspastry_ack_rtt_seconds",
			"Per-hop ack round-trip samples (first transmissions only, Karn's rule).",
			DefBuckets),
		trt: reg.Gauge("mspastry_trt_seconds",
			"Most recent self-tuned routing-table probing period Trt."),
		repairs: reg.CounterVec("mspastry_leafset_repairs_total",
			"Leaf-set repair probe launches, by cause.", "cause"),
		joins: reg.Counter("mspastry_joins_total",
			"Nodes that completed the join protocol and became active."),
		joinLatency: reg.Histogram("mspastry_join_latency_seconds",
			"Join latency from first request to activation.", DefBuckets),
		verdicts: reg.CounterVec("mspastry_secure_verdicts_total",
			"Routing failure test verdicts on root completion reports.", "verdict"),
		fanout: reg.Histogram("mspastry_secure_redundant_fanout",
			"First-hop copies sent per redundant diverse-path round.", HopBuckets),
	}
}

// Registry returns the backing registry.
func (o *Overlay) Registry() *Registry { return o.reg }

// Tracer returns the hop tracer (nil when tracing is off).
func (o *Overlay) Tracer() *Tracer { return o.tracer }

// Activated implements pastry.Observer.
func (o *Overlay) Activated(n *pastry.Node, joinLatency time.Duration) {
	o.joins.Inc()
	o.joinLatency.Observe(joinLatency.Seconds())
	if o.opts.Inner != nil {
		o.opts.Inner.Activated(n, joinLatency)
	}
}

// Delivered implements pastry.Observer.
func (o *Overlay) Delivered(n *pastry.Node, lk *pastry.Lookup) {
	o.delivered.Inc()
	o.hops.Observe(float64(lk.Hops))
	if o.opts.SharedClock {
		o.delay.Observe((n.Now() - lk.Issued).Seconds())
	}
	if o.tracer != nil {
		o.tracer.Deliver(lk, n.Ref(), n.Now())
	}
	if o.opts.Inner != nil {
		o.opts.Inner.Delivered(n, lk)
	}
}

// LookupDropped implements pastry.Observer.
func (o *Overlay) LookupDropped(n *pastry.Node, lk *pastry.Lookup, reason pastry.DropReason) {
	o.dropped.With(reason.String()).Inc()
	if o.tracer != nil {
		o.tracer.Drop(lk, reason, n.Now())
	}
	if o.opts.Inner != nil {
		o.opts.Inner.LookupDropped(n, lk, reason)
	}
}

// LookupIssued implements pastry.TraceObserver.
func (o *Overlay) LookupIssued(n *pastry.Node, lk *pastry.Lookup) {
	o.issued.Inc()
	if o.tracer != nil {
		o.tracer.Begin(lk, n.Now())
	}
}

// LookupHop implements pastry.TraceObserver.
func (o *Overlay) LookupHop(n *pastry.Node, lk *pastry.Lookup, to pastry.NodeRef, cause pastry.HopCause) {
	if o.tracer != nil {
		o.tracer.Hop(lk, n.Ref(), to, cause, n.Now())
	}
}

// MessageSent implements pastry.StatsObserver.
func (o *Overlay) MessageSent(n *pastry.Node, cat pastry.Category, retx bool) {
	o.sent.With(cat.String()).Inc()
	if retx {
		o.retx.Inc()
	}
}

// AckRTT implements pastry.StatsObserver.
func (o *Overlay) AckRTT(n *pastry.Node, to pastry.NodeRef, rtt time.Duration) {
	o.ackRTT.Observe(rtt.Seconds())
}

// TrtTuned implements pastry.StatsObserver.
func (o *Overlay) TrtTuned(n *pastry.Node, trt time.Duration) {
	o.trt.Set(trt.Seconds())
}

// LeafSetRepair implements pastry.StatsObserver.
func (o *Overlay) LeafSetRepair(n *pastry.Node, cause string) {
	o.repairs.With(cause).Inc()
}

// SecureVerdict implements pastry.SecureObserver.
func (o *Overlay) SecureVerdict(n *pastry.Node, verdict string) {
	o.verdicts.With(verdict).Inc()
}

// SecureRedundant implements pastry.SecureObserver.
func (o *Overlay) SecureRedundant(n *pastry.Node, fanout int) {
	o.fanout.Observe(float64(fanout))
}

// RecordNodeCounters copies a node's internal protocol tallies into the
// registry as gauges. On a live node this runs at scrape time (via
// Registry.OnCollect); the simulator sets the run-aggregated counters once
// at exit. Either way the metric names match.
func RecordNodeCounters(reg *Registry, c pastry.Counters) {
	set := func(name, help string, v uint64) {
		reg.Gauge(name, help).Set(float64(v))
	}
	set("mspastry_node_rt_probes_sent",
		"Routing-table liveness probes sent.", c.SentRTProbes)
	set("mspastry_node_reconnect_probes_sent",
		"Reconnect-cache pings to peers previously marked faulty.", c.SentReconnectProbes)
	set("mspastry_node_heartbeats_sent",
		"Left-neighbour heartbeats sent.", c.SentHeartbeats)
	set("mspastry_node_suppressed_probes",
		"Probes and heartbeats suppressed by application traffic.", c.SuppressedProbes)
	set("mspastry_node_retransmits",
		"Per-hop retransmissions (node counter).", c.Retransmits)
	set("mspastry_node_false_positives",
		"Nodes marked faulty that later proved alive.", c.FalsePositives)
	set("mspastry_node_delivered_lookups",
		"Lookups delivered as root (node counter).", c.DeliveredLookups)
	set("mspastry_node_retry_budget_exhausted",
		"Retransmissions suppressed by the per-peer retry budget.", c.RetryBudgetExhausted)
	set("mspastry_node_breaker_opens",
		"Per-peer circuit breakers tripped open.", c.BreakerOpens)
	set("mspastry_node_breaker_reopens",
		"Half-open breaker probes that failed and reopened the breaker.", c.BreakerReopens)
	set("mspastry_node_breaker_closes",
		"Breakers closed by a successful interaction.", c.BreakerCloses)
	set("mspastry_node_secure_reports",
		"Root completion reports evaluated by the routing failure test.", c.SecureReports)
	set("mspastry_node_secure_test_pass",
		"Root reports that passed the routing failure test.", c.SecureTestPass)
	set("mspastry_node_secure_test_fail",
		"Root reports that failed the routing failure test.", c.SecureTestFail)
	set("mspastry_node_secure_redundant_rounds",
		"Redundant diverse-path rounds issued for suspect lookups.", c.SecureRedundantRounds)
	set("mspastry_node_secure_redundant_sends",
		"Lookup copies sent by redundant diverse-path rounds.", c.SecureRedundantSends)
	set("mspastry_node_secure_distrusted",
		"Peers distrusted after a failed test lost the report vote.", c.SecureDistrusted)
	set("mspastry_node_secure_giveups",
		"Secure lookups that exhausted every redundant round without an accepted report.", c.SecureGiveUps)
}

// RecordPeerStats copies the node's per-peer state registry snapshot —
// record cardinality by lifecycle class, sweep and eviction counters,
// and the per-component slot breakdown — into the registry as gauges.
func RecordPeerStats(reg *Registry, s peer.Stats) {
	set := func(name, help string, v float64) {
		reg.Gauge(name, help).Set(v)
	}
	set("mspastry_peers_live",
		"Per-peer state records currently held.", float64(s.Live))
	set("mspastry_peers_admitted",
		"Peer records that have entered routing state at least once.", float64(s.Admitted))
	set("mspastry_peers_strangers",
		"Peer records never admitted to routing state (short TTL).", float64(s.Strangers))
	set("mspastry_peers_doomed",
		"Expelled peer records awaiting final deletion.", float64(s.Doomed))
	set("mspastry_peers_sweeps_total",
		"Registry prune passes run.", float64(s.Sweeps))
	set("mspastry_peers_evicted_strangers_total",
		"Never-admitted peer records evicted by TTL.", float64(s.EvictedStrangers))
	set("mspastry_peers_evicted_admitted_total",
		"Once-admitted peer records evicted by TTL.", float64(s.EvictedAdmitted))
	set("mspastry_peers_expelled_total",
		"Immediate eviction broadcasts (reconnect expiry, overflow).", float64(s.Expelled))
	slotLive := reg.GaugeVec("mspastry_peers_slot_live",
		"Records holding state in the component slot.", "slot")
	slotDropped := reg.GaugeVec("mspastry_peers_slot_dropped_total",
		"Slot values cleared by pruning in the component slot.", "slot")
	for _, sl := range s.Slots {
		slotLive.With(sl.Name).Set(float64(sl.Live))
		slotDropped.With(sl.Name).Set(float64(sl.Dropped))
	}
}
