package telemetry

import (
	"time"

	"mspastry/internal/dht"
	"mspastry/internal/hotspot"
	"mspastry/internal/overload"
	"mspastry/internal/pastry"
	"mspastry/internal/store"
)

// BatchBuckets count messages per coalesced datagram.
var BatchBuckets = []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 64}

// HoldBuckets measure how long a coalesced message waited for its flush,
// in seconds — sub-millisecond to the largest sensible windows.
var HoldBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1,
}

// TransportMetrics records the transport's wire activity: per-message
// traffic by category, per-datagram frame economy (messages per datagram,
// bytes saved by coalescing, flush hold latency) and error counts. It
// satisfies the transport package's MetricsSink interface (which is
// defined there to keep the transport dependency-free); install it with
// SetMetricsSink.
type TransportMetrics struct {
	sentMsgs      *CounterVec
	recvMsgs      *CounterVec
	sentDatagrams *Counter
	sentBytes     *Counter
	recvDatagrams *Counter
	recvBytes     *Counter
	savedBytes    *Counter
	batchSize     *Histogram
	recvBatch     *Histogram
	flushHold     *Histogram
	sendErrors    *Counter
	decodeError   *Counter
	shedMsgs      *CounterVec
	panics        *Counter
}

// NewTransportMetrics registers the transport metric families in reg.
func NewTransportMetrics(reg *Registry) *TransportMetrics {
	return &TransportMetrics{
		sentMsgs: reg.CounterVec("mspastry_transport_msgs_sent_total",
			"Messages accepted for transmission, by traffic category.", "category"),
		recvMsgs: reg.CounterVec("mspastry_transport_msgs_received_total",
			"Well-formed messages decoded from received frames, by traffic category.", "category"),
		sentDatagrams: reg.Counter("mspastry_transport_datagrams_sent_total",
			"Frames written to the socket; a coalesced batch is one datagram."),
		sentBytes: reg.Counter("mspastry_transport_bytes_sent_total",
			"Encoded frame bytes written to the socket."),
		recvDatagrams: reg.Counter("mspastry_transport_datagrams_received_total",
			"Structurally valid frames received."),
		recvBytes: reg.Counter("mspastry_transport_bytes_received_total",
			"Frame bytes of structurally valid datagrams received."),
		savedBytes: reg.Counter("mspastry_transport_coalesced_bytes_saved_total",
			"Bytes saved by batching versus sending every message as its own frame."),
		batchSize: reg.Histogram("mspastry_transport_msgs_per_datagram",
			"Messages per sent datagram.", BatchBuckets),
		recvBatch: reg.Histogram("mspastry_transport_msgs_per_datagram_received",
			"Messages per received datagram.", BatchBuckets),
		flushHold: reg.Histogram("mspastry_transport_flush_hold_seconds",
			"How long a sent frame's oldest message waited for the coalescing window.", HoldBuckets),
		sendErrors: reg.Counter("mspastry_transport_send_errors_total",
			"Failed sends: unresolvable addresses, oversized messages, socket errors."),
		decodeError: reg.Counter("mspastry_transport_decode_errors_total",
			"Malformed frames, and malformed messages inside otherwise valid batches."),
		shedMsgs: reg.CounterVec("mspastry_transport_msgs_shed_total",
			"Messages shed by the bounded inbound queue, by priority lane.", "lane"),
		panics: reg.Counter("mspastry_transport_handler_panics_total",
			"Message-handler panics contained by the receive loop."),
	}
}

// MsgSent implements transport.MetricsSink.
func (m *TransportMetrics) MsgSent(cat pastry.Category, bytes int) {
	m.sentMsgs.With(cat.String()).Inc()
}

// MsgReceived implements transport.MetricsSink.
func (m *TransportMetrics) MsgReceived(cat pastry.Category, bytes int) {
	m.recvMsgs.With(cat.String()).Inc()
}

// DatagramSent implements transport.MetricsSink.
func (m *TransportMetrics) DatagramSent(bytes, msgs, savedBytes int, held time.Duration) {
	m.sentDatagrams.Inc()
	m.sentBytes.Add(uint64(bytes))
	if savedBytes > 0 {
		m.savedBytes.Add(uint64(savedBytes))
	}
	m.batchSize.Observe(float64(msgs))
	m.flushHold.Observe(held.Seconds())
}

// DatagramReceived implements transport.MetricsSink.
func (m *TransportMetrics) DatagramReceived(bytes, msgs int) {
	m.recvDatagrams.Inc()
	m.recvBytes.Add(uint64(bytes))
	m.recvBatch.Observe(float64(msgs))
}

// SendError implements transport.MetricsSink.
func (m *TransportMetrics) SendError() { m.sendErrors.Inc() }

// DecodeError implements transport.MetricsSink.
func (m *TransportMetrics) DecodeError() { m.decodeError.Inc() }

// MsgShed implements transport.MetricsSink.
func (m *TransportMetrics) MsgShed(lane overload.Lane) {
	m.shedMsgs.With(lane.String()).Inc()
}

// HandlerPanic implements transport.MetricsSink.
func (m *TransportMetrics) HandlerPanic() { m.panics.Inc() }

// RecordDHTCounters copies a DHT store's tallies into the registry as
// gauges (put/get outcomes, end-to-end retries, replica pushes, sweeps).
// Run it from a Registry.OnCollect hook so every scrape sees fresh values.
func RecordDHTCounters(reg *Registry, c dht.Counters, localObjects int) {
	set := func(name, help string, v float64) {
		reg.Gauge(name, help).Set(v)
	}
	set("mspastry_dht_puts", "DHT put operations started.", float64(c.Puts))
	set("mspastry_dht_put_ok", "DHT puts acknowledged end-to-end.", float64(c.PutOK))
	set("mspastry_dht_put_failures", "DHT puts that exhausted retries.", float64(c.PutFail))
	set("mspastry_dht_gets", "DHT get operations started.", float64(c.Gets))
	set("mspastry_dht_get_ok", "DHT gets that returned a value.", float64(c.GetOK))
	set("mspastry_dht_get_notfound", "DHT gets for absent keys.", float64(c.GetNotFound))
	set("mspastry_dht_get_failures", "DHT gets that exhausted retries.", float64(c.GetFail))
	set("mspastry_dht_deletes", "DHT delete operations started.", float64(c.Deletes))
	set("mspastry_dht_delete_ok", "DHT deletes acknowledged end-to-end.", float64(c.DeleteOK))
	set("mspastry_dht_delete_failures", "DHT deletes that exhausted retries.", float64(c.DeleteFail))
	set("mspastry_dht_retries", "End-to-end request retransmissions.", float64(c.Retries))
	set("mspastry_dht_replicas_pushed", "Full-value replica pushes to leaf-set neighbours.", float64(c.ReplicasPushed))
	set("mspastry_dht_replicas_applied", "Incoming replica values that changed local state.", float64(c.ReplicasApplied))
	set("mspastry_dht_sweeps", "Replica responsibility sweeps run.", float64(c.Sweeps))
	set("mspastry_dht_sweeps_deferred", "Sweeps skipped because the transport was overloaded.", float64(c.SweepsDeferred))
	set("mspastry_dht_sweep_handoffs", "Objects handed off and dropped by sweeps.", float64(c.SweepHandoffs))
	set("mspastry_dht_sync_rounds", "Anti-entropy exchanges started.", float64(c.SyncRounds))
	set("mspastry_dht_sync_clean", "Anti-entropy exchanges where root digests matched.", float64(c.SyncClean))
	set("mspastry_dht_sync_keys_repaired", "Divergent objects sent as anti-entropy repairs.", float64(c.SyncKeysRepaired))
	set("mspastry_dht_sync_digest_bytes", "Anti-entropy and handoff control bytes sent.", float64(c.DigestBytes))
	set("mspastry_dht_maintenance_bytes", "All sweep maintenance bytes sent (control plus repair values).", float64(c.MaintBytes))
	set("mspastry_dht_local_objects", "Objects currently stored on this node.", float64(localObjects))
	set("mspastry_dht_cache_hits_local", "Gets answered from this node's own hotspot cache.", float64(c.CacheHitsLocal))
	set("mspastry_dht_cache_hits_remote", "Gets answered by a caching hop short-circuiting the route.", float64(c.CacheHitsRemote))
	set("mspastry_dht_cache_serves", "Lookups this node answered from its cache for other nodes.", float64(c.CacheServes))
	set("mspastry_dht_cache_deposits", "Entries this node deposited on caching hops as a root.", float64(c.CacheDeposits))
	set("mspastry_dht_cache_invalidations", "Invalidations sent to caching hops after writes.", float64(c.CacheInvalidations))
	set("mspastry_dht_cache_purged", "Cached entries evicted by the sweep staleness backstop.", float64(c.CachePurged))
	set("mspastry_dht_cache_stale_rejected", "Cached replies refused for violating the monotonic read floor.", float64(c.CacheStaleRejected))
}

// RecordHotspotStats copies the hotspot cache's internal counters into
// the registry (hit ratio, admission outcomes, sketch occupancy). Run
// it from a Registry.OnCollect hook alongside RecordDHTCounters when
// caching is enabled.
func RecordHotspotStats(reg *Registry, st hotspot.Stats) {
	set := func(name, help string, v float64) {
		reg.Gauge(name, help).Set(v)
	}
	set("mspastry_hotspot_cache_entries", "Entries currently in the hotspot cache.", float64(st.Entries))
	set("mspastry_hotspot_cache_capacity", "Configured hotspot cache capacity.", float64(st.Capacity))
	set("mspastry_hotspot_cache_hits", "Hotspot cache lookup hits.", float64(st.Hits))
	set("mspastry_hotspot_cache_misses", "Hotspot cache lookup misses.", float64(st.Misses))
	set("mspastry_hotspot_cache_hit_ratio", "Hotspot cache hit ratio (hits over hits plus misses).", st.HitRatio())
	set("mspastry_hotspot_cache_admitted", "Entries admitted by the TinyLFU filter.", float64(st.Admitted))
	set("mspastry_hotspot_cache_rejected", "Entries rejected by the TinyLFU filter.", float64(st.Rejected))
	set("mspastry_hotspot_cache_evictions", "Entries evicted by segmented-LRU pressure.", float64(st.Evictions))
	set("mspastry_hotspot_cache_invalidations", "Entries dropped by version supersession.", float64(st.Invalidations))
	set("mspastry_hotspot_cache_purged_total", "Entries dropped by the sweep staleness backstop.", float64(st.Purged))
	set("mspastry_hotspot_sketch_occupancy", "Fraction of non-zero popularity sketch counters.", st.SketchOccupancy)
}

// RecordStoreStats copies the object-store backend's state into the
// registry (WAL and snapshot sizes, compactions, tombstones). Run it from
// a Registry.OnCollect hook alongside RecordDHTCounters.
func RecordStoreStats(reg *Registry, st store.Stats) {
	set := func(name, help string, v float64) {
		reg.Gauge(name, help).Set(v)
	}
	set("mspastry_store_objects", "Live objects in the backend.", float64(st.Objects))
	set("mspastry_store_tombstones", "Tombstones retained for delete propagation.", float64(st.Tombstones))
	set("mspastry_store_wal_bytes", "Write-ahead log size on disk (0 for the memory backend).", float64(st.WALBytes))
	set("mspastry_store_snapshot_bytes", "Last snapshot size on disk.", float64(st.SnapshotBytes))
	set("mspastry_store_compactions", "Snapshot compactions performed.", float64(st.Compactions))
	set("mspastry_store_replayed_records", "Records replayed from disk at open.", float64(st.Replayed))
}
