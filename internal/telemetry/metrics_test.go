package telemetry

import (
	"math"
	"regexp"
	"strings"
	"testing"
)

func TestCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	if r.Counter("c_total", "help") != c {
		t.Fatal("re-registration must return the same counter")
	}
	v := r.CounterVec("v_total", "help", "cat")
	v.With("a").Inc()
	v.With("a").Inc()
	v.With("b").Inc()
	if v.With("a").Value() != 2 || v.With("b").Value() != 1 {
		t.Fatal("labelled children not independent")
	}
	g := r.Gauge("g", "help")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %v", g.Value())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "help", []float64{1, 2, 4})
	for i := 0; i < 4; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 4; i++ {
		h.Observe(1.5)
	}
	h.Observe(3)
	h.Observe(3)
	if h.Count() != 10 {
		t.Fatalf("count = %d", h.Count())
	}
	if want := 4*0.5 + 4*1.5 + 2*3.0; math.Abs(h.Sum()-want) > 1e-12 {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
	// rank 5 lands in the (1,2] bucket 1/4 of the way through: 1.25.
	if got := h.Quantile(0.5); math.Abs(got-1.25) > 1e-12 {
		t.Fatalf("p50 = %v, want 1.25", got)
	}
	// rank 9 lands in the (2,4] bucket half way through: 3.
	if got := h.Quantile(0.9); math.Abs(got-3.0) > 1e-12 {
		t.Fatalf("p90 = %v, want 3", got)
	}
	if h.Quantile(0.99) > 4 {
		t.Fatal("quantile exceeded top bound with no overflow samples")
	}

	// Overflow samples: the +Inf bucket reports its lower bound.
	for i := 0; i < 100; i++ {
		h.Observe(1000)
	}
	if got := h.Quantile(0.99); got != 4 {
		t.Fatalf("overflow p99 = %v, want 4 (the +Inf bucket's lower bound)", got)
	}
}

// promLine matches one sample line of the text exposition format.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_]+="[^"]*"(,[a-zA-Z_]+="[^"]*")*\})? -?[0-9]+(\.[0-9]+)?([eE][+-][0-9]+)?$`)

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_requests_total", "Requests.").Add(3)
	r.CounterVec("t_by_cat_total", "By category.", "category").With("x").Inc()
	r.Gauge("t_temp", "Temp.").Set(1.5)
	h := r.Histogram("t_lat_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# HELP t_requests_total Requests.\n# TYPE t_requests_total counter\nt_requests_total 3\n",
		"t_by_cat_total{category=\"x\"} 1\n",
		"# TYPE t_temp gauge\nt_temp 1.5\n",
		"# TYPE t_lat_seconds histogram\n",
		"t_lat_seconds_bucket{le=\"0.1\"} 1\n",
		"t_lat_seconds_bucket{le=\"1\"} 2\n",    // cumulative
		"t_lat_seconds_bucket{le=\"+Inf\"} 3\n", // total
		"t_lat_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

func TestCollectHooksRunOnScrapeAndSnapshot(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("t_live", "Live value.")
	calls := 0
	r.OnCollect(func() {
		calls++
		g.Set(float64(calls))
	})

	var b strings.Builder
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), "t_live 1\n") {
		t.Fatalf("collect hook did not run before render:\n%s", b.String())
	}

	snap := r.Snapshot()
	if calls != 2 {
		t.Fatalf("collect calls = %d, want 2", calls)
	}
	found := false
	for _, mv := range snap {
		if mv.Name == "t_live" && mv.Value == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("snapshot missing refreshed gauge: %+v", snap)
	}
}

func TestSnapshotHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_h", "help", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	var mv *MetricValue
	for _, m := range r.Snapshot() {
		if m.Name == "t_h" {
			mv = &m
			break
		}
	}
	if mv == nil {
		t.Fatal("histogram missing from snapshot")
	}
	if mv.Count != 2 || mv.Quantiles["p50"] == 0 || mv.Quantiles["p99"] == 0 {
		t.Fatalf("snapshot histogram = %+v", *mv)
	}
}
