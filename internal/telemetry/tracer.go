package telemetry

import (
	"sync"
	"time"

	"mspastry/internal/id"
	"mspastry/internal/pastry"
)

// HopCauseName renders a pastry hop cause for storage and JSON.
func HopCauseName(c pastry.HopCause) string { return c.String() }

// HopRecord is one forwarding event of a traced lookup: the node that
// transmitted, the next hop it chose, when (node-local clock; in the
// simulator all nodes share the clock, so consecutive records yield per-hop
// latencies), and why (first route, reroute after a missed ack, or backoff
// retransmission to the same hop).
type HopRecord struct {
	From  pastry.NodeRef `json:"from"`
	To    pastry.NodeRef `json:"to"`
	Index int            `json:"index"` // overlay hop count at transmission
	At    time.Duration  `json:"at"`
	Cause string         `json:"cause"`
	Retx  bool           `json:"retx"`
}

// LookupTrace accumulates everything observed about one traced lookup.
type LookupTrace struct {
	TraceID uint64         `json:"trace_id"`
	Key     id.ID          `json:"key"`
	Origin  pastry.NodeRef `json:"origin"`
	Issued  time.Duration  `json:"issued"`
	Hops    []HopRecord    `json:"hops"`
	// Retx counts reroute and backoff transmissions.
	Retx int `json:"retx"`

	Done      bool           `json:"done"`
	Delivered bool           `json:"delivered"`
	Root      pastry.NodeRef `json:"root,omitempty"`
	DoneAt    time.Duration  `json:"done_at"`
	DropCause string         `json:"drop_cause,omitempty"`
}

// Path reconstructs the route the lookup actually travelled by chaining
// hop records: start at the origin, and at each step follow the
// transmission out of the current node (preferring the one whose
// destination transmitted the next hop, so timed-out branches that were
// rerouted around are not followed). ok reports a complete chain: every
// link connects and, for a delivered lookup, the chain ends at the
// delivering root.
func (t *LookupTrace) Path() (path []pastry.NodeRef, ok bool) {
	byFrom := make(map[id.ID][]HopRecord, len(t.Hops))
	for _, h := range t.Hops {
		byFrom[h.From.ID] = append(byFrom[h.From.ID], h)
	}
	path = []pastry.NodeRef{t.Origin}
	cur := t.Origin
	visited := map[id.ID]bool{cur.ID: true}
	for {
		evs := byFrom[cur.ID]
		if len(evs) == 0 {
			break
		}
		// Prefer the transmission whose destination itself forwarded (it
		// was received); otherwise the one that reached the root; otherwise
		// the last transmission (latest reroute wins).
		next := evs[len(evs)-1]
		for _, ev := range evs {
			if len(byFrom[ev.To.ID]) > 0 && !visited[ev.To.ID] {
				next = ev
				break
			}
			if t.Delivered && ev.To.ID == t.Root.ID {
				next = ev
			}
		}
		if visited[next.To.ID] {
			return path, false // routing loop in the records: incomplete
		}
		visited[next.To.ID] = true
		path = append(path, next.To)
		cur = next.To
	}
	if !t.Delivered {
		return path, false
	}
	return path, path[len(path)-1].ID == t.Root.ID
}

// HopLatencies returns the latency of each link of the reconstructed path
// (difference of consecutive transmission times, with the final link
// closed by the delivery time). Only meaningful when all records share a
// clock, i.e. in the simulator.
func (t *LookupTrace) HopLatencies() []time.Duration {
	path, ok := t.Path()
	if !ok || len(path) < 2 {
		return nil
	}
	at := map[id.ID]time.Duration{t.Origin.ID: t.Issued}
	for _, h := range t.Hops {
		if _, seen := at[h.To.ID]; !seen {
			at[h.To.ID] = h.At
		}
	}
	out := make([]time.Duration, 0, len(path)-1)
	for i := 1; i < len(path); i++ {
		prev, cur := at[path[i-1].ID], at[path[i].ID]
		if i == len(path)-1 {
			cur = t.DoneAt
		}
		out = append(out, cur-prev)
	}
	return out
}

// Tracer records lookup traces. All methods are safe for concurrent use.
// Completed traces are kept in a bounded ring (capacity <= 0 keeps
// everything, which experiment harnesses use to validate reconstruction).
type Tracer struct {
	mu       sync.Mutex
	capacity int
	active   map[uint64]*LookupTrace
	done     []*LookupTrace
	next     int // ring cursor when at capacity
	total    struct {
		delivered, dropped, reconstructed uint64
	}
}

// NewTracer creates a tracer keeping up to capacity completed traces
// (capacity <= 0 = unbounded).
func NewTracer(capacity int) *Tracer {
	return &Tracer{capacity: capacity, active: make(map[uint64]*LookupTrace)}
}

// Begin opens a trace for a lookup entering the overlay.
func (tr *Tracer) Begin(lk *pastry.Lookup, at time.Duration) {
	if lk.TraceID == 0 {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if _, ok := tr.active[lk.TraceID]; ok {
		return
	}
	tr.active[lk.TraceID] = &LookupTrace{
		TraceID: lk.TraceID, Key: lk.Key, Origin: lk.Origin, Issued: at,
	}
}

// Hop records one forwarding transmission.
func (tr *Tracer) Hop(lk *pastry.Lookup, from, to pastry.NodeRef, cause pastry.HopCause, at time.Duration) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	t, ok := tr.active[lk.TraceID]
	if !ok {
		return
	}
	retx := cause != pastry.HopForward
	t.Hops = append(t.Hops, HopRecord{
		From: from, To: to, Index: lk.Hops, At: at, Cause: cause.String(), Retx: retx,
	})
	if retx {
		t.Retx++
	}
}

// Deliver closes a trace as delivered by root.
func (tr *Tracer) Deliver(lk *pastry.Lookup, root pastry.NodeRef, at time.Duration) {
	tr.finish(lk.TraceID, func(t *LookupTrace) {
		t.Delivered = true
		t.Root = root
		t.DoneAt = at
		tr.total.delivered++
		if _, ok := t.Path(); ok {
			tr.total.reconstructed++
		}
	})
}

// Drop closes a trace as dropped for the given protocol reason.
func (tr *Tracer) Drop(lk *pastry.Lookup, reason pastry.DropReason, at time.Duration) {
	tr.finish(lk.TraceID, func(t *LookupTrace) {
		t.DropCause = reason.String()
		t.DoneAt = at
		tr.total.dropped++
	})
}

func (tr *Tracer) finish(traceID uint64, fn func(*LookupTrace)) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	t, ok := tr.active[traceID]
	if !ok {
		return
	}
	delete(tr.active, traceID)
	t.Done = true
	fn(t)
	if tr.capacity > 0 && len(tr.done) >= tr.capacity {
		tr.done[tr.next] = t
		tr.next = (tr.next + 1) % tr.capacity
		return
	}
	tr.done = append(tr.done, t)
}

// Completed returns a snapshot of the retained completed traces.
func (tr *Tracer) Completed() []*LookupTrace {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return append([]*LookupTrace{}, tr.done...)
}

// Recent returns up to n of the most recently completed traces.
func (tr *Tracer) Recent(n int) []*LookupTrace {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if n <= 0 || n > len(tr.done) {
		n = len(tr.done)
	}
	out := make([]*LookupTrace, 0, n)
	// The ring cursor points at the oldest entry once wrapped.
	start := 0
	if tr.capacity > 0 && len(tr.done) == tr.capacity {
		start = tr.next
	}
	for i := 0; i < n; i++ {
		idx := (start + len(tr.done) - n + i) % len(tr.done)
		out = append(out, tr.done[idx])
	}
	return out
}

// TraceStats summarises a tracer's lifetime totals.
type TraceStats struct {
	Delivered     uint64 `json:"delivered"`
	Dropped       uint64 `json:"dropped"`
	Reconstructed uint64 `json:"reconstructed"`
	// Outstanding is the number of traces still open.
	Outstanding int `json:"outstanding"`
}

// ReconstructionRate is the fraction of delivered lookups whose full route
// path chains completely (the acceptance metric for hop tracing).
func (s TraceStats) ReconstructionRate() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return float64(s.Reconstructed) / float64(s.Delivered)
}

// Stats returns lifetime totals (counted over all traces, including ones
// evicted from the ring).
func (tr *Tracer) Stats() TraceStats {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return TraceStats{
		Delivered:     tr.total.delivered,
		Dropped:       tr.total.dropped,
		Reconstructed: tr.total.reconstructed,
		Outstanding:   len(tr.active),
	}
}
