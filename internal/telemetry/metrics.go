// Package telemetry is the observability layer shared by the simulator and
// live deployments: a dependency-free metrics registry (counters, gauges
// and fixed-bucket latency histograms with quantile estimation), Prometheus
// text exposition, and per-lookup hop tracing that reconstructs full route
// paths from a trace identifier carried in Lookup messages.
//
// The simulator harness and a live mspastry-node emit the same metric
// names through the same Overlay observer, so a dashboard built against
// one works unchanged against the other (the paper's "the code that runs
// in the simulator and in the real deployment is the same" property,
// extended to its metrics).
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named metrics. All methods are safe for concurrent use;
// metric lookups are cached by the callers on hot paths (a Counter handle
// is an atomic, not a map lookup).
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*family
	order   []string
	collect []func()
}

// metricKind is the Prometheus TYPE of a family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one metric name with zero or more labelled children.
type family struct {
	name    string
	help    string
	kind    metricKind
	label   string // label name, "" for unlabelled families
	buckets []float64

	mu       sync.Mutex
	children map[string]interface{} // label value -> *Counter | *Gauge | *Histogram
	vals     []string               // label values in creation order
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*family)}
}

// OnCollect registers fn to run before every exposition (WritePrometheus
// or Snapshot). Use it to copy externally-owned tallies — protocol
// counters, transport totals — into gauges at scrape time, so every
// surface (stdout status, /status, /metrics) reads the same numbers.
func (r *Registry) OnCollect(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collect = append(r.collect, fn)
}

// runCollect runs the registered collect hooks outside the registry lock
// (hooks call back into the registry to set gauges).
func (r *Registry) runCollect() {
	r.mu.Lock()
	hooks := append([]func(){}, r.collect...)
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
}

func (r *Registry) family(name, help string, kind metricKind, label string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.metrics[name]; ok {
		if f.kind != kind || f.label != label {
			panic(fmt.Sprintf("telemetry: metric %q re-registered with a different shape", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind, label: label,
		buckets: buckets, children: make(map[string]interface{}),
	}
	r.metrics[name] = f
	r.order = append(r.order, name)
	return f
}

func (f *family) child(val string, mk func() interface{}) interface{} {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[val]; ok {
		return c
	}
	c := mk()
	f.children[val] = c
	f.vals = append(f.vals, val)
	return c
}

// Counter returns the unlabelled counter with the given name, creating it
// on first use.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, kindCounter, "", nil)
	return f.child("", func() interface{} { return &Counter{} }).(*Counter)
}

// CounterVec returns a counter family partitioned by one label.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return &CounterVec{f: r.family(name, help, kindCounter, label, nil)}
}

// Gauge returns the unlabelled gauge with the given name.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, kindGauge, "", nil)
	return f.child("", func() interface{} { return &Gauge{} }).(*Gauge)
}

// GaugeVec returns a gauge family partitioned by one label.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	return &GaugeVec{f: r.family(name, help, kindGauge, label, nil)}
}

// Histogram returns the histogram with the given name. Buckets are upper
// bounds in ascending order; they are fixed at first registration.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.family(name, help, kindHistogram, "", buckets)
	return f.child("", func() interface{} { return newHistogram(f.buckets) }).(*Histogram)
}

// Counter is a monotonically increasing value.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// CounterVec is a labelled counter family.
type CounterVec struct{ f *family }

// With returns the child counter for the label value.
func (v *CounterVec) With(val string) *Counter {
	return v.f.child(val, func() interface{} { return &Counter{} }).(*Counter)
}

// Gauge is a value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// GaugeVec is a labelled gauge family.
type GaugeVec struct{ f *family }

// With returns the child gauge for the label value.
func (v *GaugeVec) With(val string) *Gauge {
	return v.f.child(val, func() interface{} { return &Gauge{} }).(*Gauge)
}

// DefBuckets are general-purpose latency buckets in seconds, from 1 ms to
// ~100 s — wide enough for per-hop ack RTTs and end-to-end lookup delays
// under fault injection.
var DefBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 100,
}

// HopBuckets count overlay hops (expected O(log N)).
var HopBuckets = []float64{0, 1, 2, 3, 4, 5, 6, 8, 10, 16, 32, 64}

// Histogram is a fixed-bucket histogram. Observations are counted into the
// first bucket whose upper bound is >= the value (cumulative on export,
// like Prometheus).
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	count  atomic.Uint64
	// sum holds the float64 bit pattern of the running sum, updated with a
	// CAS loop so concurrent observers never serialize on a mutex.
	sum atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic("telemetry: histogram buckets must be sorted")
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (for example 0.5, 0.95, 0.99) by
// linear interpolation within the containing bucket, the same estimate
// Prometheus's histogram_quantile computes. Returns 0 with no samples.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if i == len(h.bounds) {
				// +Inf bucket: the upper bound is unknown; report its
				// lower bound, like histogram_quantile does.
				return lo
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4), running collect hooks first.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.runCollect()
	r.mu.Lock()
	names := append([]string{}, r.order...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.metrics[n]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		vals := append([]string{}, f.vals...)
		children := make([]interface{}, len(vals))
		for i, v := range vals {
			children[i] = f.children[v]
		}
		f.mu.Unlock()
		if len(children) == 0 {
			continue
		}
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind)
		for i, c := range children {
			labels := ""
			if f.label != "" {
				labels = fmt.Sprintf("{%s=%q}", f.label, vals[i])
			}
			switch m := c.(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, labels, m.Value())
			case *Gauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, labels, formatFloat(m.Value()))
			case *Histogram:
				var cum uint64
				for j, bound := range m.bounds {
					cum += m.counts[j].Load()
					fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", f.name, formatFloat(bound), cum)
				}
				fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", f.name, m.Count())
				fmt.Fprintf(&b, "%s_sum %s\n", f.name, formatFloat(m.Sum()))
				fmt.Fprintf(&b, "%s_count %d\n", f.name, m.Count())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func formatFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.9f", v), "0"), ".")
}

// MetricValue is one exported sample in a Snapshot.
type MetricValue struct {
	Name  string  `json:"name"`
	Label string  `json:"label,omitempty"`
	Value float64 `json:"value"`
	// Quantiles carries p50/p95/p99 for histograms (keyed "p50" etc.).
	Quantiles map[string]float64 `json:"quantiles,omitempty"`
	Count     uint64             `json:"count,omitempty"`
}

// Snapshot returns every metric as a flat list (histograms as count +
// quantiles), running collect hooks first. It backs the JSON /status
// endpoint and the stdout status command.
func (r *Registry) Snapshot() []MetricValue {
	r.runCollect()
	r.mu.Lock()
	names := append([]string{}, r.order...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.metrics[n]
	}
	r.mu.Unlock()

	var out []MetricValue
	for _, f := range fams {
		f.mu.Lock()
		vals := append([]string{}, f.vals...)
		children := make([]interface{}, len(vals))
		for i, v := range vals {
			children[i] = f.children[v]
		}
		f.mu.Unlock()
		for i, c := range children {
			mv := MetricValue{Name: f.name, Label: vals[i]}
			switch m := c.(type) {
			case *Counter:
				mv.Value = float64(m.Value())
			case *Gauge:
				mv.Value = m.Value()
			case *Histogram:
				mv.Count = m.Count()
				mv.Value = m.Sum()
				mv.Quantiles = map[string]float64{
					"p50": m.Quantile(0.50),
					"p95": m.Quantile(0.95),
					"p99": m.Quantile(0.99),
				}
			}
			out = append(out, mv)
		}
	}
	return out
}
