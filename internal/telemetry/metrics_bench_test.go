package telemetry

import (
	"sync/atomic"
	"testing"
)

// BenchmarkHistogramObserve measures the single-goroutine observation
// path: every delivered lookup, ack RTT and join in the simulator passes
// through it, so it runs millions of times per experiment.
func BenchmarkHistogramObserve(b *testing.B) {
	reg := NewRegistry()
	h := reg.Histogram("bench_observe_seconds", "bench", DefBuckets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) / 1000)
	}
}

// BenchmarkHistogramObserveParallel measures contended observation: a
// live node's transport and admin goroutines observe concurrently, and
// any serialization here back-pressures the event loop.
func BenchmarkHistogramObserveParallel(b *testing.B) {
	reg := NewRegistry()
	h := reg.Histogram("bench_observe_parallel_seconds", "bench", DefBuckets)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var i uint64
		for pb.Next() {
			i++
			h.Observe(float64(i%1000) / 1000)
		}
	})
	if h.Count() != uint64(b.N) {
		b.Fatalf("lost observations: count=%d want %d", h.Count(), b.N)
	}
}

// BenchmarkCounterAddParallel is the baseline the histogram should
// approach: pure atomic counters never serialize.
func BenchmarkCounterAddParallel(b *testing.B) {
	reg := NewRegistry()
	c := reg.Counter("bench_counter_total", "bench")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
	var sink atomic.Uint64
	sink.Store(c.Value())
}
