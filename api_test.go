package mspastry

import (
	"math/rand"
	"testing"
	"time"
)

// TestPublicAPIOverlayFlow exercises the full public surface: topology,
// simulator, network, node lifecycle, lookups and the Squirrel/Scribe
// application layers — everything a downstream user can reach.
func TestPublicAPIOverlayFlow(t *testing.T) {
	sim := NewSimulator(1)
	topo := NewCorpNetTopology(DefaultCorpNetConfig(), rand.New(rand.NewSource(1)))
	net := NewSimNetwork(sim, topo, 0)

	cfg := DefaultConfig()
	cfg.L = 8

	const n = 12
	first := topo.Attach(n, sim.Rand())
	obs := &apiObserver{}
	var nodes []*Node
	var seed NodeRef
	for i := 0; i < n; i++ {
		ep := net.NewEndpoint(first + i)
		ref := NodeRef{ID: RandomID(sim.Rand()), Addr: ep.Addr()}
		node, err := NewNode(ref, cfg, ep, obs)
		if err != nil {
			t.Fatal(err)
		}
		ep.Bind(node)
		if i == 0 {
			node.Bootstrap()
			seed = ref
		} else {
			node.Join(seed)
		}
		nodes = append(nodes, node)
		sim.RunUntil(sim.Now() + 2*time.Second)
	}
	sim.RunUntil(sim.Now() + time.Minute)
	for i, node := range nodes {
		if !node.Active() {
			t.Fatalf("node %d not active", i)
		}
	}

	key := KeyFromString("object-1")
	if _, ok := nodes[3].Lookup(key, []byte("x")); !ok {
		t.Fatal("lookup refused")
	}
	sim.RunUntil(sim.Now() + 5*time.Second)
	if obs.delivered == 0 {
		t.Fatal("lookup not delivered through the public API")
	}
}

type apiObserver struct{ delivered int }

func (o *apiObserver) Activated(*Node, time.Duration)           {}
func (o *apiObserver) Delivered(*Node, *Lookup)                 { o.delivered++ }
func (o *apiObserver) LookupDropped(*Node, *Lookup, DropReason) {}

// TestPublicAPIExperiment runs a tiny harness experiment end to end via
// the public wrappers.
func TestPublicAPIExperiment(t *testing.T) {
	topo, err := BuildTopology("gatech", 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr := GenerateTrace(PoissonTrace(time.Hour, 40, 20*time.Minute))
	cfg := DefaultExperiment(topo, tr)
	cfg.SetupRamp = time.Minute
	res := RunExperiment(cfg)
	if res.Totals.MeanActive < 30 {
		t.Fatalf("mean active = %v", res.Totals.MeanActive)
	}
	if res.Totals.IncorrectRate != 0 {
		t.Fatalf("incorrect deliveries: %v", res.Totals.IncorrectRate)
	}
}

// TestPublicAPITraceConfigs checks the trace constructors carry the
// paper's published statistics.
func TestPublicAPITraceConfigs(t *testing.T) {
	g := GnutellaTrace()
	if g.Population != 17000 || g.Duration != 60*time.Hour {
		t.Fatalf("gnutella config drifted: %+v", g)
	}
	o := OverNetTrace()
	if o.Population != 1468 || o.Duration != 7*24*time.Hour {
		t.Fatalf("overnet config drifted: %+v", o)
	}
	m := MicrosoftTrace()
	if m.Population != 20000 || m.Duration != 37*24*time.Hour {
		t.Fatalf("microsoft config drifted: %+v", m)
	}
}

// TestPublicAPIConfigDefaults pins the paper's base parameters.
func TestPublicAPIConfigDefaults(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.B != 4 || cfg.L != 32 {
		t.Fatalf("b/l defaults drifted: b=%d l=%d", cfg.B, cfg.L)
	}
	if cfg.Tls != 30*time.Second || cfg.To != 3*time.Second || cfg.MaxProbeRetries != 2 {
		t.Fatal("failure-detection defaults drifted")
	}
	if !cfg.PerHopAcks || !cfg.ActiveProbing || !cfg.SelfTune || cfg.TargetRawLoss != 0.05 {
		t.Fatal("reliability defaults drifted")
	}
	if !cfg.PNS || cfg.DistProbeCount != 3 || cfg.RTMaintenance != 20*time.Minute {
		t.Fatal("PNS defaults drifted")
	}
}
