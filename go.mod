module mspastry

go 1.22
